#include "gpusim/racecheck.hpp"

#include <cstdlib>
#include <sstream>
#include <string_view>

#include "obs/profiler.hpp"

namespace accred::gpusim {

namespace {

Dim3 unflatten_thread(std::uint32_t tid, const Dim3& block_dim) {
  Dim3 t;
  t.x = tid % block_dim.x;
  t.y = (tid / block_dim.x) % block_dim.y;
  t.z = tid / (block_dim.x * block_dim.y);
  return t;
}

void render_access(std::ostream& os, const RaceAccess& a) {
  os << 't' << '(' << a.thread.x << ',' << a.thread.y << ',' << a.thread.z
     << ") " << (a.write ? "write" : "read") << " [" << a.stage << ']';
}

}  // namespace

const char* RaceReport::kind() const noexcept {
  if (first.write && second.write) return "WAW";
  if (first.write) return "RAW";
  return "WAR";
}

std::string to_string(const RaceReport& r) {
  std::ostringstream os;
  os << r.kind() << ' '
     << (r.space == RaceReport::Space::kShared ? "shared+0x" : "global 0x")
     << std::hex << r.addr << std::dec << " block(" << r.block.x << ','
     << r.block.y << ',' << r.block.z << "): ";
  render_access(os, r.first);
  os << " vs ";
  render_access(os, r.second);
  return os.str();
}

void RaceChecker::reset(std::size_t shared_bytes, std::uint32_t nwarps,
                        Dim3 block_idx, Dim3 block_dim, bool track_global) {
  // Arena reset: bump the generation instead of wiping the shadow arrays.
  // Slots stamped with an older generation are logically zero; they are
  // reinitialized lazily when (if) the new block touches them, so arming a
  // block costs O(warps), not O(slab granules + global words).
  if (++gen_ == 0) {
    // Generation wrap (after 2^32-1 resets): stale stamps could collide
    // with the new generation, so pay for one full clear and restart at 1.
    std::fill(shared_.begin(), shared_.end(), SharedSlot{});
    std::fill(global_.begin(), global_.end(), GlobalSlot{});
    gen_ = 1;
  }
  shared_granules_ = (shared_bytes + kGranuleBytes - 1) / kGranuleBytes;
  if (shared_.size() < shared_granules_) shared_.resize(shared_granules_);
  global_used_ = 0;
  warp_epoch_.assign(nwarps, 0);
  block_epoch_ = 0;
  track_global_ = track_global;
  block_idx_ = block_idx;
  block_dim_ = block_dim;
  races_ = 0;
  pending_.clear();
}

void RaceChecker::conflict(RaceReport::Space space, std::uint64_t addr,
                           Shadow& s, std::uint8_t kind, const Access& prior,
                           bool prior_write, const Access& cur,
                           bool cur_write) {
  races_ += 1;
  if ((s.reported & kind) != 0) return;  // one report per word per kind
  s.reported |= kind;
  if (pending_.size() >= kMaxReportsPerBlock) return;
  pending_.push_back({space, addr, prior, prior_write, cur, cur_write});
}

void RaceChecker::check_word(RaceReport::Space space, std::uint64_t addr,
                             Shadow& s, std::uint32_t tid, bool write,
                             std::uint16_t stage) {
  const Access cur{tid, block_epoch_, warp_epoch_[tid / 32], stage};
  if (write) {
    if (!ordered(s.write, tid)) {
      conflict(space, addr, s, kWaw, s.write, true, cur, true);
    }
    if (!ordered(s.read1, tid)) {
      conflict(space, addr, s, kWar, s.read1, false, cur, true);
    }
    if (!ordered(s.read2, tid)) {
      conflict(space, addr, s, kWar, s.read2, false, cur, true);
    }
    s.write = cur;
  } else {
    if (!ordered(s.write, tid)) {
      conflict(space, addr, s, kRaw, s.write, true, cur, false);
    }
    if (s.read1.tid != tid) s.read2 = s.read1;
    s.read1 = cur;
  }
}

void RaceChecker::shared_access(std::uint32_t tid, std::uint32_t offset,
                                std::uint32_t bytes, bool write,
                                std::uint16_t stage) {
  const std::uint32_t first = offset / kGranuleBytes;
  const std::uint32_t last = (offset + bytes - 1) / kGranuleBytes;
  for (std::uint32_t g = first; g <= last && g < shared_granules_; ++g) {
    SharedSlot& sl = shared_[g];
    if (sl.gen != gen_) {  // first touch this block: logically-zero slot
      sl.s = Shadow{};
      sl.gen = gen_;
    }
    check_word(RaceReport::Space::kShared,
               static_cast<std::uint64_t>(g) * kGranuleBytes, sl.s, tid,
               write, stage);
  }
}

RaceChecker::Shadow& RaceChecker::global_slot(std::uint64_t g) {
  if (global_.empty() || global_used_ * 4 >= global_.size() * 3) {
    grow_global_table();
  }
  // Fibonacci hash spreads consecutive granule indices (the common
  // streaming pattern) across the table; linear probe from there.
  const std::size_t mask = global_.size() - 1;
  std::size_t i = static_cast<std::size_t>(
                      (g * 0x9E3779B97F4A7C15ull) >> 32) &
                  mask;
  for (;;) {
    GlobalSlot& sl = global_[i];
    if (sl.gen == gen_) {
      if (sl.key == g) return sl.s;  // hit
    } else {
      // Stale or never-used slot == empty: claim it for this generation.
      sl.key = g;
      sl.gen = gen_;
      sl.s = Shadow{};
      global_used_ += 1;
      return sl.s;
    }
    i = (i + 1) & mask;
  }
}

void RaceChecker::grow_global_table() {
  const std::size_t cap = global_.empty() ? 1024 : global_.size() * 2;
  std::vector<GlobalSlot> old = std::move(global_);
  global_.assign(cap, GlobalSlot{});
  const std::size_t mask = cap - 1;
  for (const GlobalSlot& sl : old) {
    if (sl.gen != gen_) continue;  // stale entries die with the old table
    std::size_t i = static_cast<std::size_t>(
                        (sl.key * 0x9E3779B97F4A7C15ull) >> 32) &
                    mask;
    while (global_[i].gen == gen_) i = (i + 1) & mask;
    global_[i] = sl;
  }
}

void RaceChecker::global_access(std::uint32_t tid, std::uint64_t vaddr,
                                std::uint32_t bytes, bool write,
                                std::uint16_t stage) {
  if (!track_global_) return;
  const std::uint64_t first = vaddr / kGranuleBytes;
  const std::uint64_t last = (vaddr + bytes - 1) / kGranuleBytes;
  for (std::uint64_t g = first; g <= last; ++g) {
    check_word(RaceReport::Space::kGlobal, g * kGranuleBytes, global_slot(g),
               tid, write, stage);
  }
}

std::vector<RaceReport> RaceChecker::take_reports(
    const obs::StageTable* stages) const {
  auto resolve = [&](const Access& a, bool write) {
    RaceAccess out;
    out.thread = unflatten_thread(a.tid, block_dim_);
    out.write = write;
    if (stages != nullptr && a.stage < stages->rows().size()) {
      out.stage = stages->rows()[a.stage].name;
    } else {
      out.stage = obs::kUnscopedStageName;
    }
    return out;
  };
  std::vector<RaceReport> out;
  out.reserve(pending_.size());
  for (const Pending& p : pending_) {
    RaceReport r;
    r.space = p.space;
    r.addr = p.addr;
    r.block = block_idx_;
    r.first = resolve(p.first, p.first_write);
    r.second = resolve(p.second, p.second_write);
    out.push_back(std::move(r));
  }
  return out;
}

bool racecheck_env_default() {
  static const bool enabled = [] {
    const char* env = std::getenv("ACCRED_RACECHECK");
    return env && *env && std::string_view(env) != "0";
  }();
  return enabled;
}

}  // namespace accred::gpusim
