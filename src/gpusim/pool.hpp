// Persistent host worker pool backing parallel multi-block simulation.
//
// CUDA guarantees the thread blocks of one launch are independent (no
// ordering, no shared mutable state except explicitly synchronized global
// memory), so the simulator is free to execute different blocks on
// different OS threads. launch() shards the flattened block range into
// contiguous ranges and runs one shard per worker; every OS thread that
// executes a shard reuses its own tls_scheduler(), so fiber stacks stay
// warm across launches. The pool itself only hands out shard indices — all
// result slots are pre-sized and written disjointly (see launch.cpp and
// DESIGN.md §7 for the determinism contract).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace accred::gpusim {

/// Cooperative cancellation shared by the shards of one launch. When a
/// shard hits a fatal error it calls cancel_from(shard); every
/// *higher-numbered* shard then stops at its next checkpoint (between
/// blocks in launch.cpp, between barrier waves in the scheduler) with
/// LaunchError{kCancelled}. Lower-numbered shards keep running: shards
/// cover contiguous ascending block ranges, so only they can still produce
/// the deterministic winner — the error a serial block sweep would have
/// hit first. launch() swallows kCancelled and rethrows that winner.
class CancelFlag {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Record that `shard` faulted (atomic minimum over reporters).
  void cancel_from(std::uint32_t shard) noexcept;
  /// True when a shard numbered below `shard` has faulted.
  [[nodiscard]] bool cancelled_for(std::uint32_t shard) const noexcept;
  /// Lowest faulting shard so far, or kNone.
  [[nodiscard]] std::uint32_t first() const noexcept;

 private:
  std::atomic<std::uint32_t> first_{kNone};
};

/// Client-visible cooperative cancellation of launches (distinct from the
/// intra-launch CancelFlag above, which shards use among themselves). A
/// token is shared between the submitting client and the execution path via
/// SimOptions::cancel_token: once cancel() is observed, the next checkpoint
/// — launch entry or a barrier wave inside any block — terminates the
/// launch with a structured LaunchError{kCancelled} (the launch driver
/// canonicalizes the message, so results are bit-identical no matter which
/// shard noticed first).
///
/// cancel() is wall-clock (whenever the client thread runs), which is
/// correct but not reproducible mid-flight. For deterministic tests and
/// campaigns, cancel_at_launch(n) schedules the cancellation at the start
/// of the n-th launch that observes this token (1 = the very next): the
/// launch driver calls on_launch_begin() before simulating any block, so
/// the n-th kernel of a multi-kernel job aborts at its entry — the same
/// point on every run, for any sim-thread or worker count.
class CancelToken {
 public:
  /// Request cancellation now. Safe from any thread, idempotent.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Schedule cancel() to fire when the nth subsequent launch observing
  /// this token begins (1 = the next launch). 0 clears a pending schedule.
  void cancel_at_launch(std::uint32_t nth) noexcept {
    countdown_.store(nth, std::memory_order_relaxed);
  }

  /// Launch-entry hook (called by the launch driver, not by clients):
  /// counts down a cancel_at_launch() schedule and fires it at zero.
  void on_launch_begin() noexcept;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint32_t> countdown_{0};
};

class HostPool {
public:
  /// Process-wide pool. Workers are spawned lazily on the first parallel
  /// run (never more than needed) and persist until process exit.
  static HostPool& instance();

  /// Execute `fn(shard)` for every shard in [0, nshards). The calling
  /// thread participates, so progress is guaranteed even with zero spawned
  /// workers; idle pool workers pull the remaining shard indices from a
  /// shared counter. `fn` must tolerate concurrent invocation on distinct
  /// shards and must not throw — capture per-shard exceptions instead and
  /// signal a CancelFlag so sibling shards stop promptly (launch.cpp
  /// rethrows the lowest shard's error). Concurrent run() calls are
  /// serialized: one shard set is in flight at a time.
  void run(std::uint32_t nshards, const std::function<void(std::uint32_t)>& fn);

  /// Number of worker threads currently spawned (callers excluded).
  [[nodiscard]] std::uint32_t workers() const;

  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;
  ~HostPool();

private:
  HostPool();  // allocates state_ up front: run() stays data-race free for
               // concurrent first callers (e.g. service worker threads)
  struct Job;
  struct State;
  /// Claim and run shards until the job's counter is exhausted; returns
  /// true if this call finished the job's last shard.
  static bool drain(Job& job);
  void worker_main();
  /// Spawn workers until `want` exist (capped); call with state lock held.
  void ensure_workers_locked(std::uint32_t want);

  State* state_ = nullptr;  // owned; incomplete here to keep the header light
};

/// Default worker count for launches with SimOptions::sim_threads == 0:
/// the ACCRED_SIM_THREADS environment variable if set (parsed once), else
/// std::thread::hardware_concurrency(). set_default_sim_threads() overrides
/// both for the process — benches and examples wire their --sim-threads
/// flag through it; 0 restores the env / hardware default.
[[nodiscard]] std::uint32_t default_sim_threads();
void set_default_sim_threads(std::uint32_t n);

/// Effective shard count for one launch: `requested`
/// (SimOptions::sim_threads) if nonzero, else default_sim_threads();
/// clamped so there is never more than one shard per block and never more
/// than kMaxSimThreads shards.
[[nodiscard]] std::uint32_t resolve_sim_threads(std::uint32_t requested,
                                                std::uint64_t blocks);

/// Upper bound on shards/workers per launch (a safety valve for
/// pathological ACCRED_SIM_THREADS values, far above any real host).
inline constexpr std::uint32_t kMaxSimThreads = 256;

/// Ambient default for SimOptions::fastpath (the converged-warp fast path,
/// DESIGN.md §12): on unless the ACCRED_FASTPATH environment variable is
/// explicitly falsy ("0"/"false"/"no"/"off", parsed once) or a bench's
/// --no-fastpath flag called set_default_fastpath(false). A launch runs the
/// fast path only when both its SimOptions::fastpath and this default are
/// true, so either knob can force the classic fiber path for bisection.
[[nodiscard]] bool default_fastpath();
void set_default_fastpath(bool on);

/// One contiguous slab of fiber stacks, recycled across thread blocks and
/// launches. Each tls_scheduler() owns one: a block only reallocates when
/// its shape outgrows every block the scheduler has seen, so steady-state
/// simulation performs zero stack allocations. Contiguity keeps the lane
/// stacks of one warp adjacent, which the chained fast path walks in order.
class FiberStackPool {
public:
  /// Ensure capacity for `count` stacks of `stack_bytes` each (16-aligned).
  /// Returns true when the slab was (re)allocated — every fiber bound to
  /// the old slab must be rebuilt by the caller. Existing capacity is
  /// reused verbatim otherwise.
  bool ensure(std::size_t count, std::size_t stack_bytes);

  /// Base address of stack `i` (valid until the next reallocating ensure()).
  [[nodiscard]] std::byte* stack(std::size_t i) noexcept {
    return slab_.get() + i * (stack_bytes_ + kStagger);
  }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t stack_bytes() const noexcept {
    return stack_bytes_;
  }

  /// Extra bytes between consecutive stacks. Stack sizes are round numbers
  /// (the 64 KiB default is a power of two), which would place every
  /// stack's *top* — the bytes a context switch reads and writes — at the
  /// same L1 set: a 128-thread block then cycles 128 hot stack tops through
  /// a handful of cache ways. 320 is 16-aligned (the fiber ABI requirement)
  /// but not a multiple of the 4 KiB set span, so successive tops walk all
  /// L1 sets.
  static constexpr std::size_t kStagger = 320;

private:
  std::unique_ptr<std::byte[]> slab_;
  std::size_t count_ = 0;
  std::size_t stack_bytes_ = 0;
};

}  // namespace accred::gpusim
