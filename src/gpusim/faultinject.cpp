#include "gpusim/faultinject.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "gpusim/error.hpp"
#include "obs/profiler.hpp"

namespace accred::gpusim {

namespace {

/// splitmix64: the seeded bit choice for bitflip faults. Mixing only
/// (seed, flat block, event ordinal) keeps campaigns reproducible for any
/// host-thread count.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

FaultKind parse_kind(std::string_view s, std::string_view clause) {
  if (s == "bitflip") return FaultKind::kBitFlip;
  if (s == "skip_barrier") return FaultKind::kSkipBarrier;
  if (s == "warp_abort") return FaultKind::kWarpAbort;
  if (s == "alloc_fail") return FaultKind::kAllocFail;
  throw std::invalid_argument("fault spec: unknown kind '" + std::string(s) +
                              "' in clause '" + std::string(clause) + "'");
}

std::int64_t parse_int(std::string_view v, std::string_view clause) {
  const std::string s(v);
  char* end = nullptr;
  const long long n = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw std::invalid_argument("fault spec: bad number '" + s +
                                "' in clause '" + std::string(clause) + "'");
  }
  return n;
}

Fault parse_clause(std::string_view clause) {
  Fault f;
  std::string_view rest = clause;
  std::string_view head = rest;
  if (const auto colon = rest.find(':'); colon != std::string_view::npos) {
    head = rest.substr(0, colon);
    rest = rest.substr(colon + 1);
  } else {
    rest = {};
  }
  if (const auto at = head.find('@'); at != std::string_view::npos) {
    f.stage = std::string(head.substr(at + 1));
    head = head.substr(0, at);
  }
  f.kind = parse_kind(head, clause);

  while (!rest.empty()) {
    std::string_view kv = rest;
    if (const auto comma = rest.find(','); comma != std::string_view::npos) {
      kv = rest.substr(0, comma);
      rest = rest.substr(comma + 1);
    } else {
      rest = {};
    }
    if (kv.empty()) continue;
    const auto eq = kv.find('=');
    if (eq == std::string_view::npos) {
      if (kv == "sticky") {
        f.sticky = true;
        continue;
      }
      throw std::invalid_argument("fault spec: unknown flag '" +
                                  std::string(kv) + "' in clause '" +
                                  std::string(clause) + "'");
    }
    const std::string_view key = kv.substr(0, eq);
    const std::int64_t val = parse_int(kv.substr(eq + 1), clause);
    if (key == "block") {
      f.block = val;
    } else if (key == "warp") {
      f.warp = static_cast<std::int32_t>(val);
    } else if (key == "nth") {
      f.nth = static_cast<std::uint64_t>(val);
    } else if (key == "seed") {
      f.seed = static_cast<std::uint64_t>(val);
    } else if (key == "bit") {
      f.bit = static_cast<std::uint32_t>(val);
    } else {
      throw std::invalid_argument("fault spec: unknown key '" +
                                  std::string(key) + "' in clause '" +
                                  std::string(clause) + "'");
    }
  }
  return f;
}

}  // namespace

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kBitFlip: return "bitflip";
    case FaultKind::kSkipBarrier: return "skip_barrier";
    case FaultKind::kWarpAbort: return "warp_abort";
    case FaultKind::kAllocFail: return "alloc_fail";
  }
  return "unknown";
}

std::string Fault::to_spec() const {
  std::ostringstream os;
  os << to_string(kind);
  if (!stage.empty()) os << '@' << stage;
  const char* sep = ":";
  const auto emit = [&](const char* key, std::int64_t v) {
    os << sep << key << '=' << v;
    sep = ",";
  };
  if (block != -1) emit("block", block);
  if (warp != -1) emit("warp", warp);
  if (nth != 0) emit("nth", static_cast<std::int64_t>(nth));
  if (seed != 1) emit("seed", static_cast<std::int64_t>(seed));
  if (bit != kAnyBit) emit("bit", static_cast<std::int64_t>(bit));
  if (sticky) {
    os << sep << "sticky";
  }
  return os.str();
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  while (!spec.empty()) {
    std::string_view clause = spec;
    if (const auto semi = spec.find(';'); semi != std::string_view::npos) {
      clause = spec.substr(0, semi);
      spec = spec.substr(semi + 1);
    } else {
      spec = {};
    }
    // Trim surrounding spaces so shell-quoted lists read naturally.
    while (!clause.empty() && clause.front() == ' ') clause.remove_prefix(1);
    while (!clause.empty() && clause.back() == ' ') clause.remove_suffix(1);
    if (clause.empty()) continue;
    plan.faults_.push_back(parse_clause(clause));
  }
  return plan;
}

bool FaultPlan::has_alloc_faults() const noexcept {
  for (const Fault& f : faults_) {
    if (f.kind == FaultKind::kAllocFail) return true;
  }
  return false;
}

std::string FaultPlan::to_spec() const {
  std::string out;
  for (const Fault& f : faults_) {
    if (!out.empty()) out += ';';
    out += f.to_spec();
  }
  return out;
}

std::string FaultPlan::sticky_spec() const {
  std::string out;
  for (const Fault& f : faults_) {
    if (!f.sticky) continue;
    if (!out.empty()) out += ';';
    out += f.to_spec();
  }
  return out;
}

std::string to_string(const FaultEvent& e) {
  std::ostringstream os;
  os << to_string(e.kind) << " fired in block=(" << e.block.x << ','
     << e.block.y << ',' << e.block.z << ") warp=" << e.warp;
  if (!e.stage.empty()) os << " stage=" << e.stage;
  if (!e.detail.empty()) os << ": " << e.detail;
  return os.str();
}

void BlockFaults::reset(const FaultPlan* plan, std::uint64_t flat_block,
                        Dim3 block_idx, const obs::StageTable* stages) {
  arms_.clear();
  events_.clear();
  stages_ = stages;
  flat_block_ = flat_block;
  block_idx_ = block_idx;
  if (plan == nullptr) return;
  for (const Fault& f : plan->faults()) {
    if (f.kind == FaultKind::kAllocFail) continue;  // armed on the Device
    if (f.block != -1 && f.block != static_cast<std::int64_t>(flat_block)) {
      continue;
    }
    arms_.push_back(Arm{&f, 0, false, {}});
  }
}

std::string BlockFaults::stage_name(std::uint16_t stage) const {
  if (stages_ == nullptr || stage >= stages_->rows().size()) return {};
  return stages_->rows()[stage].name;
}

bool BlockFaults::matches(const Fault& f, std::uint32_t tid,
                          std::uint16_t stage) const {
  if (f.warp != -1 && static_cast<std::uint32_t>(f.warp) != tid / 32) {
    return false;
  }
  return f.stage.empty() || f.stage == stage_name(stage);
}

void BlockFaults::record(const Fault& f, std::uint32_t tid,
                         std::uint16_t stage, std::string detail) {
  if (events_.size() >= kMaxEventsPerBlock) return;
  FaultEvent e;
  e.kind = f.kind;
  e.block = block_idx_;
  e.warp = tid / 32;
  e.stage = stage_name(stage);
  e.detail = std::move(detail);
  events_.push_back(std::move(e));
}

void BlockFaults::on_instr(std::uint32_t tid, std::uint16_t stage,
                           std::uint32_t barrier_seq) {
  for (Arm& arm : arms_) {
    const Fault& f = *arm.fault;
    if (f.kind != FaultKind::kWarpAbort || arm.fired) continue;
    if (!matches(f, tid, stage)) continue;
    if (arm.count++ != f.nth) continue;
    arm.fired = true;
    record(f, tid, stage, "aborted at instrumented op " + std::to_string(f.nth));
    LaunchErrorInfo info;
    info.code = LaunchErrorCode::kWarpAbort;
    info.message = "injected warp abort (" + f.to_spec() + ")";
    info.stage = stage_name(stage);
    info.block = block_idx_;
    info.warp = tid / 32;
    info.barrier_seq = barrier_seq;
    info.injected = true;
    info.has_site = true;
    throw LaunchError(std::move(info));
  }
}

void BlockFaults::on_store(std::uint32_t tid, std::uint16_t stage,
                           std::byte* data, std::uint32_t bytes,
                           bool shared_space, std::uint64_t addr) {
  for (Arm& arm : arms_) {
    const Fault& f = *arm.fault;
    if (f.kind != FaultKind::kBitFlip || arm.fired) continue;
    if (!matches(f, tid, stage)) continue;
    if (arm.count++ != f.nth) continue;
    arm.fired = true;
    const std::uint32_t nbits = bytes * 8;
    const std::uint32_t bit =
        f.bit != Fault::kAnyBit
            ? f.bit % nbits
            : static_cast<std::uint32_t>(
                  mix64(f.seed ^ (flat_block_ * 0x9E3779B97F4A7C15ull) ^
                        f.nth) %
                  nbits);
    data[bit / 8] ^= std::byte{static_cast<unsigned char>(1U << (bit % 8))};
    std::ostringstream detail;
    detail << "flipped bit " << bit << " of " << bytes << "-byte "
           << (shared_space ? "shared" : "global") << " store @0x" << std::hex
           << addr;
    record(f, tid, stage, detail.str());
  }
}

bool BlockFaults::skip_barrier(std::uint32_t tid, std::uint16_t stage,
                               std::uint32_t barrier_seq) {
  bool skip = false;
  for (Arm& arm : arms_) {
    const Fault& f = *arm.fault;
    if (f.kind != FaultKind::kSkipBarrier) continue;
    if (!matches(f, tid, stage)) continue;
    // Per-thread count of *matching* arrivals, so a stage-keyed site
    // ("skip_barrier@tree") drops the nth barrier *of that stage* for every
    // matching thread — a uniform deletion across the selected warp(s) —
    // regardless of how many barriers earlier stages executed.
    if (arm.per_tid.size() <= tid) arm.per_tid.resize(tid + 1, 0);
    if (arm.per_tid[tid]++ != f.nth) continue;
    skip = true;
    if (!arm.fired) {
      arm.fired = true;
      record(f, tid, stage,
             "matching syncthreads " + std::to_string(f.nth) +
                 " skipped (thread's barrier " + std::to_string(barrier_seq) +
                 ")");
    }
  }
  return skip;
}

const std::string& faults_env_default() {
  static const std::string parsed = [] {
    const char* e = std::getenv("ACCRED_FAULTS");
    return e != nullptr ? std::string(e) : std::string();
  }();
  return parsed;
}

}  // namespace accred::gpusim
