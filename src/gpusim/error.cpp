#include "gpusim/error.hpp"

#include <sstream>

namespace accred::gpusim {

const char* to_string(LaunchErrorCode c) noexcept {
  switch (c) {
    case LaunchErrorCode::kNone: return "none";
    case LaunchErrorCode::kWatchdog: return "watchdog";
    case LaunchErrorCode::kBarrierDivergence: return "barrier_divergence";
    case LaunchErrorCode::kRace: return "race";
    case LaunchErrorCode::kDeviceFault: return "device_fault";
    case LaunchErrorCode::kWarpAbort: return "warp_abort";
    case LaunchErrorCode::kOom: return "oom";
    case LaunchErrorCode::kCancelled: return "cancelled";
    case LaunchErrorCode::kNumericGuard: return "numeric_guard";
  }
  return "unknown";
}

std::string to_string(const LaunchErrorInfo& info) {
  std::ostringstream os;
  os << to_string(info.code) << ": " << info.message;
  if (info.injected) os << " [injected]";
  if (info.has_site) {
    os << " [block=(" << info.block.x << ',' << info.block.y << ','
       << info.block.z << ") warp=" << info.warp;
    if (!info.stage.empty()) os << " stage=" << info.stage;
    os << " barrier_seq=" << info.barrier_seq << " step=" << info.step << ']';
  } else if (!info.stage.empty()) {
    os << " [stage=" << info.stage << ']';
  }
  return os.str();
}

}  // namespace accred::gpusim
