// The device-side programming surface: every simulated GPU thread executes
// kernel code against a ThreadCtx, which provides CUDA's built-in variables
// (threadIdx / blockIdx / blockDim / gridDim), barriers, and cost-modeled,
// bounds-checked global/shared memory access.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/dim3.hpp"
#include "gpusim/faultinject.hpp"
#include "gpusim/fiber.hpp"
#include "gpusim/racecheck.hpp"
#include "gpusim/shared_memory.hpp"

namespace accred::gpusim {

/// Why a device fiber suspended (or stopped).
enum class ThreadPhase : std::uint8_t {
  kReady,       ///< runnable
  kAtSyncwarp,  ///< waiting at ctx.syncwarp()
  kAtBarrier,   ///< waiting at ctx.syncthreads()
  kDone,        ///< kernel function returned
};

/// Everything shared by the threads of the block currently being simulated.
/// Owned by the scheduler; referenced by ThreadCtx.
struct BlockState {
  std::vector<std::byte> shared;        ///< shared-memory slab
  std::vector<WarpLog> warp_logs;       ///< one per warp
  std::vector<ThreadPhase> phase;       ///< one per thread (linear tid)
  /// Per warp: tids parked at syncwarp since the warp's last rendezvous
  /// release, in arrival order. Lets the scheduler release exactly the
  /// arrived lanes in O(lanes resumed) instead of rescanning all 32 phases
  /// every pass.
  std::vector<std::vector<std::uint32_t>> warp_pending;
  std::vector<std::uint32_t> barrier_seq;  ///< syncthreads count per thread
  /// Stage table of the block being simulated, or null when profiling is
  /// off (obs/profiler.hpp). Armed by the scheduler before the first fiber
  /// runs; ThreadCtx::prof_scope interns stage names here.
  obs::StageTable* profile = nullptr;
  /// Current stage id per thread (linear tid); only maintained while
  /// profiling. The scheduler reads it to attribute barrier waves.
  std::vector<std::uint16_t> thread_stage;
  /// Race detector of the block being simulated, or null when racecheck is
  /// off (racecheck.hpp). Armed by the scheduler (which also arms the stage
  /// table so reports carry stage names); ThreadCtx's ld/st/lds/sts hooks
  /// feed it every data-carrying memory access.
  RaceChecker* racecheck = nullptr;
  /// Fault injector of the block being simulated, or null when no fault
  /// plan is armed (faultinject.hpp). Fed by the same ld/st/lds/sts hooks
  /// plus the barrier entries; like racecheck, the off path costs one
  /// null-pointer branch per event.
  BlockFaults* faults = nullptr;
  /// Fast-path pass driver of the block being simulated, or null when the
  /// block runs the classic resume()/yield() protocol (DESIGN.md §12).
  /// Armed by the scheduler; the barrier suspend sites park through it so a
  /// suspending lane switches straight into the next lane of the pass.
  FastChain* chain = nullptr;
  std::uint64_t barriers = 0;           ///< syncthreads executed by the block
  std::uint64_t syncwarps = 0;
  bool barrier_exit_divergence = false; ///< a thread exited while others
                                        ///< waited at syncthreads (CUDA UB)
  bool barrier_site_mismatch = false;   ///< threads met at *different*
                                        ///< syncthreads call sites (CUDA UB)
  bool strict_barriers = false;         ///< throw on the above instead
};

class ThreadCtx {
public:
  ThreadCtx(BlockState& block, Dim3 thread_idx, Dim3 block_idx, Dim3 block_dim,
            Dim3 grid_dim) noexcept
      : threadIdx(thread_idx),
        blockIdx(block_idx),
        blockDim(block_dim),
        gridDim(grid_dim),
        block_(&block) {
    tid_ = threadIdx.x + threadIdx.y * blockDim.x +
           threadIdx.z * blockDim.x * blockDim.y;
    lane_ = tid_ % 32;
    log_ = &block_->warp_logs[tid_ / 32];
  }

  // CUDA built-ins (same names on purpose).
  Dim3 threadIdx, blockIdx, blockDim, gridDim;  // NOLINT(readability-*)

  [[nodiscard]] std::uint32_t linear_tid() const noexcept { return tid_; }
  [[nodiscard]] std::uint32_t warp() const noexcept { return tid_ / 32; }
  [[nodiscard]] std::uint32_t lane() const noexcept { return lane_; }

  /// Block-wide barrier (__syncthreads).
  void syncthreads() {
    if (block_->faults != nullptr) {
      block_->faults->on_instr(tid_, cur_stage(), block_->barrier_seq[tid_]);
      // An injected skip_barrier makes this thread sail past its nth
      // syncthreads — the call neither parks the fiber nor bumps its
      // barrier ordinal, exactly as if the source line were deleted.
      if (block_->faults->skip_barrier(tid_, cur_stage(),
                                       block_->barrier_seq[tid_])) {
        return;
      }
    }
    block_->phase[tid_] = ThreadPhase::kAtBarrier;
    block_->barrier_seq[tid_] += 1;
    suspend();
  }

  /// Warp-wide barrier (__syncwarp). Free on Kepler (SIMD-synchronous
  /// warps); required in the simulator wherever real code relies on warp
  /// lockstep, e.g. the unrolled last-warp tree steps of §3.1.1.
  void syncwarp() {
    if (block_->faults != nullptr) {
      block_->faults->on_instr(tid_, cur_stage(), block_->barrier_seq[tid_]);
    }
    block_->phase[tid_] = ThreadPhase::kAtSyncwarp;
    block_->warp_pending[warp()].push_back(tid_);
    suspend();
  }

  /// Charge `units` of arithmetic work to this lane (index math, compare,
  /// FMA-disabled multiply-add, ... — unit ≈ one scalar instruction).
  void alu(double units) noexcept { log_->alu(lane_, units); }

  // ---- Profiling scopes ------------------------------------------------

  /// RAII handle restoring the thread's previous profiling stage on
  /// destruction. Movable; default-constructed (and moved-from) handles
  /// are inert, which is also what prof_scope returns when profiling is
  /// off — kernels annotate unconditionally and pay nothing.
  class ProfScope {
  public:
    ProfScope() = default;
    ProfScope(ProfScope&& o) noexcept : ctx_(o.ctx_), prev_(o.prev_) {
      o.ctx_ = nullptr;
    }
    ProfScope& operator=(ProfScope&& o) noexcept {
      if (this != &o) {
        release();
        ctx_ = o.ctx_;
        prev_ = o.prev_;
        o.ctx_ = nullptr;
      }
      return *this;
    }
    ProfScope(const ProfScope&) = delete;
    ProfScope& operator=(const ProfScope&) = delete;
    ~ProfScope() { release(); }

  private:
    friend class ThreadCtx;
    ProfScope(ThreadCtx* ctx, std::uint16_t prev) noexcept
        : ctx_(ctx), prev_(prev) {}
    void release() noexcept {
      if (ctx_ != nullptr) ctx_->set_prof_stage(prev_);
      ctx_ = nullptr;
    }
    ThreadCtx* ctx_ = nullptr;
    std::uint16_t prev_ = 0;
  };

  /// Enter the named profiling stage: until the returned scope dies, every
  /// event this thread logs (memory groups it opens, ALU charges, barriers
  /// it leads) books into `name`'s row. Scopes nest — destruction restores
  /// the enclosing stage.
  [[nodiscard]] ProfScope prof_scope(std::string_view name) {
    if (block_->profile == nullptr) return {};
    const std::uint16_t prev = block_->thread_stage[tid_];
    set_prof_stage(block_->profile->intern(name));
    return {this, prev};
  }

  /// Set this thread's current stage id directly (prof_scope's engine).
  /// No-op when profiling is off.
  void set_prof_stage(std::uint16_t stage) noexcept {
    if (block_->profile == nullptr) return;
    block_->thread_stage[tid_] = stage;
    log_->set_lane_stage(lane_, stage);
  }

  /// Charge a global-memory access at a virtual address without touching
  /// any buffer — used to model traffic whose data content is irrelevant
  /// (e.g. a compiler spilling an accumulator to local memory). Not fed to
  /// racecheck: no data flows through these addresses, so no ordering can
  /// be violated.
  void touch_global(std::uint64_t vaddr, std::uint32_t bytes) {
    log_->global_access_alu1(lane_, vaddr, bytes);
  }

  // ---- Global memory --------------------------------------------------

  template <typename T>
  [[nodiscard]] T ld(const GlobalView<T>& v, std::size_t i) {
    check_global(v, i, "global load");
    log_->global_access_alu1(lane_, v.addr_of(i), sizeof(T));
    if (block_->racecheck != nullptr) {
      block_->racecheck->global_access(tid_, v.addr_of(i), sizeof(T),
                                       /*write=*/false, cur_stage());
    }
    if (block_->faults != nullptr) {
      block_->faults->on_instr(tid_, cur_stage(), block_->barrier_seq[tid_]);
    }
    return v.data[i];
  }

  template <typename T>
  void st(const GlobalView<T>& v, std::size_t i, const T& x) {
    check_global(v, i, "global store");
    log_->global_access_alu1(lane_, v.addr_of(i), sizeof(T));
    if (block_->racecheck != nullptr) {
      block_->racecheck->global_access(tid_, v.addr_of(i), sizeof(T),
                                       /*write=*/true, cur_stage());
    }
    if (block_->faults != nullptr) {
      block_->faults->on_instr(tid_, cur_stage(), block_->barrier_seq[tid_]);
    }
    v.data[i] = x;
    if (block_->faults != nullptr) {
      block_->faults->on_store(tid_, cur_stage(),
                               reinterpret_cast<std::byte*>(&v.data[i]),
                               sizeof(T), /*shared_space=*/false,
                               v.addr_of(i));
    }
  }

  // ---- Shared memory ---------------------------------------------------

  template <typename T>
  [[nodiscard]] T lds(const SharedView<T>& v, std::size_t i) {
    T out;
    const std::uint32_t off = check_shared(v, i, "shared load");
    log_->shared_access_alu1(lane_, off, sizeof(T));
    if (block_->racecheck != nullptr) {
      block_->racecheck->shared_access(tid_, off, sizeof(T), /*write=*/false,
                                       cur_stage());
    }
    if (block_->faults != nullptr) {
      block_->faults->on_instr(tid_, cur_stage(), block_->barrier_seq[tid_]);
    }
    std::memcpy(&out, block_->shared.data() + off, sizeof(T));
    return out;
  }

  template <typename T>
  void sts(const SharedView<T>& v, std::size_t i, const T& x) {
    const std::uint32_t off = check_shared(v, i, "shared store");
    log_->shared_access_alu1(lane_, off, sizeof(T));
    if (block_->racecheck != nullptr) {
      block_->racecheck->shared_access(tid_, off, sizeof(T), /*write=*/true,
                                       cur_stage());
    }
    if (block_->faults != nullptr) {
      block_->faults->on_instr(tid_, cur_stage(), block_->barrier_seq[tid_]);
    }
    std::memcpy(block_->shared.data() + off, &x, sizeof(T));
    if (block_->faults != nullptr) {
      block_->faults->on_store(tid_, cur_stage(),
                               block_->shared.data() + off, sizeof(T),
                               /*shared_space=*/true, off);
    }
  }

private:
  /// Park this lane until the scheduler's next pass re-enters it: through
  /// the fast-path chain when one is armed (one switch, straight into the
  /// next lane), else through the classic yield-to-resumer protocol.
  void suspend() {
    if (block_->chain != nullptr) {
      block_->chain->park();
    } else {
      Fiber::yield();
    }
  }

  /// Stage id reports attribute this thread's accesses to. thread_stage is
  /// maintained whenever the stage table is armed — which the scheduler
  /// guarantees while racecheck is on.
  [[nodiscard]] std::uint16_t cur_stage() const noexcept {
    return block_->profile != nullptr ? block_->thread_stage[tid_] : 0;
  }

  /// Cold throw paths, outlined so the bounds checks inlined into every
  /// ld/st/lds/sts compile to a compare and a never-taken branch.
  [[noreturn, gnu::noinline, gnu::cold]] static void throw_oob(
      const char* what, const char* where, std::size_t i, std::size_t size) {
    throw std::out_of_range(std::string(what) + " out of bounds: index " +
                            std::to_string(i) + " in " + where + " of " +
                            std::to_string(size) + " elements");
  }
  [[noreturn, gnu::noinline, gnu::cold]] static void throw_slab_end(
      const char* what) {
    throw std::out_of_range(std::string(what) +
                            " past end of shared memory slab");
  }

  template <typename T>
  void check_global(const GlobalView<T>& v, std::size_t i, const char* what) {
    if (i >= v.size) [[unlikely]] throw_oob(what, "buffer", i, v.size);
  }

  template <typename T>
  std::uint32_t check_shared(const SharedView<T>& v, std::size_t i,
                             const char* what) {
    if (i >= v.count) [[unlikely]] {
      throw_oob(what, "shared view", i, v.count);
    }
    const std::uint32_t off = v.byte_offset_of(i);
    if (off + sizeof(T) > block_->shared.size()) [[unlikely]] {
      throw_slab_end(what);
    }
    return off;
  }

  BlockState* block_;
  WarpLog* log_;
  std::uint32_t tid_;
  std::uint32_t lane_;  ///< tid_ % 32, cached for the per-event hot paths
};

}  // namespace accred::gpusim
