// Minimal aligned text-table printer used by the benchmark harnesses to
// print Table-2 / Figure-11-shaped output.
#pragma once

#include <algorithm>
#include <cstddef>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace accred::util {

/// Collects rows of strings and prints them with per-column alignment.
/// First row added via `header()` is separated from the body by a rule.
class TextTable {
public:
  void header(std::vector<std::string> cells) {
    header_ = std::move(cells);
  }

  void row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width;
    auto widen = [&](const std::vector<std::string>& cells) {
      if (cells.size() > width.size()) width.resize(cells.size(), 0);
      for (std::size_t i = 0; i < cells.size(); ++i)
        width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        os << std::left << std::setw(static_cast<int>(width[i])) << cells[i];
        if (i + 1 < cells.size()) os << "  ";
      }
      os << '\n';
    };
    if (!header_.empty()) {
      emit(header_);
      std::size_t total = 0;
      for (std::size_t w : width) total += w + 2;
      os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto& r : rows_) emit(r);
  }

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace accred::util
