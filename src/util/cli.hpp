// Tiny command-line flag parser for the bench / example executables.
// Supports `--name value`, `--name=value`, and boolean `--name`.
//
// Boolean flags must be declared up front (the `bool_flags` constructor
// set): an undeclared `--flag` followed by a non-flag token greedily binds
// the token as its value, which silently swallows positionals
// (`bench --profile out.json` used to store "out.json" as the value of
// --profile). Declared booleans never consume the next argument; read them
// with get_bool(), which also accepts explicit `--flag=0` / `--flag=true`
// forms.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace accred::util {

class Cli {
public:
  Cli(int argc, char** argv,
      std::initializer_list<std::string_view> bool_flags = {}) {
    for (std::string_view f : bool_flags) bool_flags_.emplace(f);
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (!arg.starts_with("--")) {
        positional_.emplace_back(arg);
        continue;
      }
      arg.remove_prefix(2);
      if (auto eq = arg.find('='); eq != std::string_view::npos) {
        flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      } else if (!bool_flags_.contains(arg) && i + 1 < argc &&
                 std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[std::string(arg)] = argv[++i];
      } else {
        flags_[std::string(arg)] = "";  // boolean flag
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return flags_.contains(name);
  }

  [[nodiscard]] std::string get(const std::string& name,
                                std::string fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? std::move(fallback) : it->second;
  }

  /// Boolean flag value: absent -> fallback, bare `--name` (empty value)
  /// -> true, `--name=0/false/no/off` -> false, `--name=1/true/yes/on`
  /// -> true; anything else is a usage error.
  [[nodiscard]] bool get_bool(const std::string& name,
                              bool fallback = false) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    const std::string& v = it->second;
    if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
      return true;
    }
    if (v == "0" || v == "false" || v == "no" || v == "off") return false;
    throw std::invalid_argument("--" + name + ": expected a boolean, got \"" +
                                v + "\"");
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    std::size_t pos = 0;
    std::int64_t v = 0;
    try {
      v = std::stoll(it->second, &pos);
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + name + ": expected an integer, got \"" +
                                  it->second + "\"");
    }
    if (pos != it->second.size()) {
      throw std::invalid_argument("--" + name +
                                  ": trailing characters after integer: \"" +
                                  it->second + "\"");
    }
    return v;
  }

  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    std::size_t pos = 0;
    double v = 0;
    try {
      v = std::stod(it->second, &pos);
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + name + ": expected a number, got \"" +
                                  it->second + "\"");
    }
    if (pos != it->second.size()) {
      throw std::invalid_argument("--" + name +
                                  ": trailing characters after number: \"" +
                                  it->second + "\"");
    }
    return v;
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

private:
  std::map<std::string, std::string> flags_;
  std::set<std::string, std::less<>> bool_flags_;
  std::vector<std::string> positional_;
};

}  // namespace accred::util
