// Tiny command-line flag parser for the bench / example executables.
// Supports `--name value`, `--name=value`, and boolean `--name`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace accred::util {

class Cli {
public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (!arg.starts_with("--")) {
        positional_.emplace_back(arg);
        continue;
      }
      arg.remove_prefix(2);
      if (auto eq = arg.find('='); eq != std::string_view::npos) {
        flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[std::string(arg)] = argv[++i];
      } else {
        flags_[std::string(arg)] = "";  // boolean flag
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return flags_.contains(name);
  }

  [[nodiscard]] std::string get(const std::string& name,
                                std::string fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? std::move(fallback) : it->second;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    return std::stoll(it->second);
  }

  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    return std::stod(it->second);
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace accred::util
