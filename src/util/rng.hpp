// Deterministic counter-based random number generation.
//
// The Monte Carlo PI application in the paper pre-generates coordinates on
// the host with rand(); we substitute SplitMix64 so every run (and every
// test) sees identical data regardless of platform.
#pragma once

#include <cstdint>
#include <span>

namespace accred::util {

/// SplitMix64: tiny, statistically solid 64-bit mixer. Each call advances
/// the state by a fixed odd constant, so streams can also be derived by
/// seeding with `seed + i` without correlation problems.
class SplitMix64 {
public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double next_unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double next_in(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_unit();
  }

  /// Uniform integer in [0, bound) without modulo bias worth worrying about
  /// for simulation workloads (bound << 2^64).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

private:
  std::uint64_t state_;
};

/// Fill `out` with uniform values in [lo, hi).
inline void fill_uniform(std::span<double> out, std::uint64_t seed, double lo,
                         double hi) {
  SplitMix64 rng(seed);
  for (double& v : out) v = rng.next_in(lo, hi);
}

inline void fill_uniform(std::span<float> out, std::uint64_t seed, float lo,
                         float hi) {
  SplitMix64 rng(seed);
  for (float& v : out) v = static_cast<float>(rng.next_in(lo, hi));
}

}  // namespace accred::util
