// Top-level exception guard for every bench, example, and tool main: no
// escaping exception may reach std::terminate (a "crash" in the fault
// campaign's contract — EXPERIMENTS.md). LaunchError renders its full
// structured site; anything else prints what(). Exit code 3 distinguishes
// "died on an exception" from a bench's own non-zero statuses (1 = record
// write failure, 2 = nothing to report in the report tools).
#pragma once

#include <exception>
#include <iostream>

#include "gpusim/error.hpp"

namespace accred::util {

inline constexpr int kGuardedExitCode = 3;

/// Run `body` (the real main) and convert any escaping exception into a
/// structured stderr line plus a non-zero exit. Usage:
///   int main(int argc, char** argv) {
///     return accred::util::guarded_main([&] { return run(argc, argv); });
///   }
template <typename Fn>
int guarded_main(Fn&& body) noexcept {
  try {
    return body();
  } catch (const gpusim::LaunchError& e) {
    std::cerr << "[fatal] launch error: " << to_string(e.info()) << '\n';
    return kGuardedExitCode;
  } catch (const std::exception& e) {
    std::cerr << "[fatal] " << e.what() << '\n';
    return kGuardedExitCode;
  } catch (...) {
    std::cerr << "[fatal] unknown exception\n";
    return kGuardedExitCode;
  }
}

}  // namespace accred::util
