// 2D heat equation with max-reduction convergence (§4, Figs. 12a / 13a).
//
// A grid holds fixed boundary temperatures and inner points updated by a
// 4-point stencil each iteration; convergence is detected by a `max`
// reduction over |T_new - T_old| across all inner points — the OpenACC
// snippet of Fig. 13a (gang loop over rows, vector loop over columns,
// reduction(max:error)). The stencil update itself is an ordinary parallel
// kernel; per the paper, the comparison isolates the reduction.
#pragma once

#include <cstdint>

#include "acc/profiles.hpp"
#include "gpusim/cost_model.hpp"

namespace accred::apps {

struct HeatOptions {
  std::int64_t ni = 256;           ///< grid columns
  std::int64_t nj = 256;           ///< grid rows
  int max_iterations = 200;
  double tolerance = 1e-3;         ///< stop when max |dT| drops below this
  double boundary_temperature = 100.0;
  acc::CompilerId compiler = acc::CompilerId::kOpenUH;
  acc::LaunchConfig config{};
};

struct HeatResult {
  int iterations = 0;
  bool converged = false;
  double final_error = 0;
  double update_device_ms = 0;     ///< stencil kernels (same for everyone)
  double reduction_device_ms = 0;  ///< the part the paper compares
  double total_device_ms = 0;
  gpusim::LaunchStats reduction_stats;
};

/// Run the solver on the simulated device. Deterministic.
[[nodiscard]] HeatResult run_heat(const HeatOptions& opts);

/// Host reference: same solver sequentially; used by tests.
[[nodiscard]] HeatResult run_heat_reference(const HeatOptions& opts);

}  // namespace accred::apps
