#include "apps/matmul.hpp"

#include "acc/region.hpp"
#include "util/rng.hpp"

namespace accred::apps {

namespace {

void fill_inputs(const MatmulOptions& opts, std::vector<float>& a,
                 std::vector<float>& b) {
  const auto count = static_cast<std::size_t>(opts.n * opts.n);
  a.resize(count);
  b.resize(count);
  util::fill_uniform(std::span<float>(a), opts.seed, -1.0F, 1.0F);
  util::fill_uniform(std::span<float>(b), opts.seed + 1, -1.0F, 1.0F);
}

}  // namespace

MatmulResult run_matmul(const MatmulOptions& opts) {
  const std::int64_t n = opts.n;
  gpusim::Device dev;

  std::vector<float> host_a;
  std::vector<float> host_b;
  fill_inputs(opts, host_a, host_b);
  auto a = dev.alloc<float>(host_a.size());
  auto b = dev.alloc<float>(host_b.size());
  auto c = dev.alloc<float>(host_a.size());
  a.copy_from_host(host_a);
  b.copy_from_host(host_b);
  c.fill(0.0F);
  auto av = a.view();
  auto bv = b.view();
  auto cv = c.view();

  acc::Region region(dev, acc::profile(opts.compiler));
  region.parallel("parallel num_gangs(" +
                  std::to_string(opts.config.num_gangs) + ") num_workers(" +
                  std::to_string(opts.config.num_workers) +
                  ") vector_length(" +
                  std::to_string(opts.config.vector_length) + ")");
  // Fig. 13b: the inner product accumulates in the vector loop and is used
  // right after it (C[i*n+j] = c), inside the worker loop's body.
  region.loop("loop gang", n)
      .loop("loop worker", n)
      .loop("loop vector reduction(+:c)", n)
      .var("c", acc::DataType::kFloat, /*accum=*/2, /*use=*/1);

  reduce::Bindings<float> bind;
  bind.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t i, std::int64_t j,
                     std::int64_t k) {
    const float x = ctx.ld(av, static_cast<std::size_t>(i * n + k));
    const float y = ctx.ld(bv, static_cast<std::size_t>(k * n + j));
    ctx.alu(2);  // multiply + index arithmetic (FMA disabled, §4)
    return x * y;
  };
  bind.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t i, std::int64_t j,
                  float r) {
    ctx.st(cv, static_cast<std::size_t>(i * n + j), r);
  };

  auto res = region.run<float>(bind);

  MatmulResult out;
  out.device_ms = res.stats.device_time_ns / 1e6;
  out.stats = res.stats;
  out.c.resize(host_a.size());
  c.copy_to_host(out.c);
  return out;
}

MatmulResult run_matmul_sequential_k(const MatmulOptions& opts) {
  const std::int64_t n = opts.n;
  gpusim::Device dev;

  std::vector<float> host_a;
  std::vector<float> host_b;
  fill_inputs(opts, host_a, host_b);
  auto a = dev.alloc<float>(host_a.size());
  auto b = dev.alloc<float>(host_b.size());
  auto c = dev.alloc<float>(host_a.size());
  a.copy_from_host(host_a);
  b.copy_from_host(host_b);
  c.fill(0.0F);
  auto av = a.view();
  auto bv = b.view();
  auto cv = c.view();

  const auto& cfg = opts.config;
  // i over gangs, j over the block's worker*vector threads, k serial —
  // the conventional mapping, as a plain Fig. 3 kernel.
  auto stats = gpusim::launch(
      dev, {cfg.num_gangs}, {cfg.vector_length, cfg.num_workers}, 0,
      [&, av, bv, cv](gpusim::ThreadCtx& ctx) {
        const std::int64_t threads = ctx.blockDim.count();
        const std::int64_t tid = ctx.linear_tid();
        for (std::int64_t i = ctx.blockIdx.x; i < n; i += ctx.gridDim.x) {
          for (std::int64_t j = tid; j < n; j += threads) {
            float acc = 0.0F;
            for (std::int64_t k = 0; k < n; ++k) {
              acc += ctx.ld(av, static_cast<std::size_t>(i * n + k)) *
                     ctx.ld(bv, static_cast<std::size_t>(k * n + j));
              ctx.alu(3);
            }
            ctx.st(cv, static_cast<std::size_t>(i * n + j), acc);
          }
        }
      },
      gpusim::SimOptions{.label = "matmul_sequential_k"});

  MatmulResult out;
  out.device_ms = stats.device_time_ns / 1e6;
  out.stats = stats;
  out.c.resize(host_a.size());
  c.copy_to_host(out.c);
  return out;
}

std::vector<float> matmul_reference(const MatmulOptions& opts) {
  const std::int64_t n = opts.n;
  std::vector<float> a;
  std::vector<float> b;
  fill_inputs(opts, a, b);
  std::vector<float> c(static_cast<std::size_t>(n * n), 0.0F);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0F;
      for (std::int64_t k = 0; k < n; ++k) {
        acc += a[static_cast<std::size_t>(i * n + k)] *
               b[static_cast<std::size_t>(k * n + j)];
      }
      c[static_cast<std::size_t>(i * n + j)] = acc;
    }
  }
  return c;
}

}  // namespace accred::apps
