// Monte Carlo PI (§4, Figs. 12c / 13c): sample points in the unit square
// and count hits inside the unit circle with a `+` reduction distributed
// over gang and vector threads on one loop. Coordinates are pre-generated
// on the host and transferred to the device, exactly as the paper does
// ("most compilers do not support function calls inside an OpenACC kernel
// region"); we substitute SplitMix64 for rand() for determinism.
#pragma once

#include <cstdint>

#include "acc/profiles.hpp"
#include "gpusim/cost_model.hpp"

namespace accred::apps {

struct MonteCarloOptions {
  std::int64_t samples = 1 << 22;
  acc::CompilerId compiler = acc::CompilerId::kOpenUH;
  acc::LaunchConfig config{};
  std::uint64_t seed = 2014;
};

struct MonteCarloResult {
  double pi_estimate = 0;
  std::int64_t hits = 0;
  double device_ms = 0;     ///< reduction kernel(s)
  double transfer_ms = 0;   ///< modeled PCIe time for the coordinate arrays
  gpusim::LaunchStats stats;
};

[[nodiscard]] MonteCarloResult run_montecarlo(const MonteCarloOptions& opts);

/// Host reference count on the same deterministic coordinates.
[[nodiscard]] std::int64_t montecarlo_reference_hits(
    const MonteCarloOptions& opts);

}  // namespace accred::apps
