// Naive matrix multiplication with the k loop parallelized as a vector
// reduction (§4, Figs. 12b / 13b): most programmers parallelize only the
// outer two loops; the paper also parallelizes the inner product because
// "essentially it just includes the sum reduction operations".
#pragma once

#include <cstdint>
#include <vector>

#include "acc/profiles.hpp"
#include "gpusim/cost_model.hpp"

namespace accred::apps {

struct MatmulOptions {
  std::int64_t n = 128;  ///< square matrices n x n
  acc::CompilerId compiler = acc::CompilerId::kOpenUH;
  acc::LaunchConfig config{};
  std::uint64_t seed = 42;
};

struct MatmulResult {
  double device_ms = 0;
  gpusim::LaunchStats stats;
  std::vector<float> c;  ///< result matrix (row-major)
};

/// C = A * B with the Fig. 13b mapping: i -> gang, j -> worker,
/// k -> vector reduction(+:c).
[[nodiscard]] MatmulResult run_matmul(const MatmulOptions& opts);

/// The baseline the paper contrasts against: "most developers usually
/// only parallelize the outer two loops and let the third loop execute
/// sequentially since the third loop has data dependence". i -> gang,
/// j -> worker+vector, k runs serially inside each thread.
[[nodiscard]] MatmulResult run_matmul_sequential_k(const MatmulOptions& opts);

/// Host reference multiply on the same deterministic inputs.
[[nodiscard]] std::vector<float> matmul_reference(const MatmulOptions& opts);

}  // namespace accred::apps
