#include "apps/montecarlo.hpp"

#include <vector>

#include "acc/region.hpp"
#include "util/rng.hpp"

namespace accred::apps {

namespace {

void fill_coords(const MonteCarloOptions& opts, std::vector<double>& x,
                 std::vector<double>& y) {
  x.resize(static_cast<std::size_t>(opts.samples));
  y.resize(static_cast<std::size_t>(opts.samples));
  util::fill_uniform(std::span<double>(x), opts.seed, -1.0, 1.0);
  util::fill_uniform(std::span<double>(y), opts.seed + 1, -1.0, 1.0);
}

}  // namespace

MonteCarloResult run_montecarlo(const MonteCarloOptions& opts) {
  gpusim::Device dev;
  std::vector<double> host_x;
  std::vector<double> host_y;
  fill_coords(opts, host_x, host_y);

  auto x = dev.alloc<double>(host_x.size());
  auto y = dev.alloc<double>(host_y.size());
  x.copy_from_host(host_x);
  y.copy_from_host(host_y);
  auto xv = x.view();
  auto yv = y.view();

  acc::Region region(dev, acc::profile(opts.compiler));
  region.parallel("parallel num_gangs(" +
                  std::to_string(opts.config.num_gangs) +
                  ") vector_length(" +
                  std::to_string(opts.config.vector_length) +
                  ") copyin(x[0:n], y[0:n])");
  // Fig. 13c: one loop distributed over gang and vector, reduction(+:m).
  region.loop("loop gang vector reduction(+:m)", opts.samples)
      .var("m", acc::DataType::kInt64, /*accum=*/0, acc::VarInfo::kHostUse);

  reduce::Bindings<std::int64_t> b;
  b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t idx, std::int64_t,
                  std::int64_t) -> std::int64_t {
    const double px = ctx.ld(xv, static_cast<std::size_t>(idx));
    const double py = ctx.ld(yv, static_cast<std::size_t>(idx));
    ctx.alu(4);  // two multiplies, add, compare (FMA disabled, §4)
    return (px * px + py * py < 1.0) ? 1 : 0;
  };

  auto res = region.run<std::int64_t>(b);

  MonteCarloResult out;
  out.hits = res.scalar.value_or(0);
  out.pi_estimate =
      4.0 * static_cast<double>(out.hits) / static_cast<double>(opts.samples);
  out.device_ms = res.stats.device_time_ns / 1e6;
  out.transfer_ms = dev.transfers().h2d_time_ns / 1e6;
  out.stats = res.stats;
  return out;
}

std::int64_t montecarlo_reference_hits(const MonteCarloOptions& opts) {
  std::vector<double> x;
  std::vector<double> y;
  fill_coords(opts, x, y);
  std::int64_t hits = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] * x[i] + y[i] * y[i] < 1.0) ++hits;
  }
  return hits;
}

}  // namespace accred::apps
