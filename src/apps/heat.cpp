#include "apps/heat.hpp"

#include <cmath>
#include <vector>

#include "acc/region.hpp"

namespace accred::apps {

namespace {

/// Initialize the grid: boundary at `hot` along the top edge, 0 elsewhere
/// (the classic configuration of the course notes the paper cites).
void init_grid(std::vector<double>& t, std::int64_t ni, std::int64_t nj,
               double hot) {
  t.assign(static_cast<std::size_t>(ni * nj), 0.0);
  for (std::int64_t i = 0; i < ni; ++i) {
    t[static_cast<std::size_t>(i)] = hot;  // row j = 0
  }
}

}  // namespace

HeatResult run_heat(const HeatOptions& opts) {
  const std::int64_t ni = opts.ni;
  const std::int64_t nj = opts.nj;
  gpusim::Device dev;

  std::vector<double> host_init;
  init_grid(host_init, ni, nj, opts.boundary_temperature);
  auto t1 = dev.alloc<double>(host_init.size());
  auto t2 = dev.alloc<double>(host_init.size());
  t1.copy_from_host(host_init);
  t2.copy_from_host(host_init);

  // Plan the Fig. 13a reduction once: gang over rows, vector over columns,
  // max-reduction consumed on the host each iteration.
  const acc::CompilerProfile& prof = acc::profile(opts.compiler);
  acc::Region region(dev, prof);
  region.parallel("parallel num_gangs(" +
                  std::to_string(opts.config.num_gangs) + ") vector_length(" +
                  std::to_string(opts.config.vector_length) + ")");
  // A user of the explicit-clause discipline (CAPS) must annotate every
  // spanned loop; the auto-detecting compilers take one clause (Fig. 9).
  const bool explicit_clauses =
      prof.discipline == acc::ClauseDiscipline::kExplicitAllLevels;
  region.loop("loop gang reduction(max:error)", 1, nj - 1)
      .loop(explicit_clauses ? "loop vector reduction(max:error)"
                             : "loop vector",
            1, ni - 1)
      .var("error", acc::DataType::kDouble, /*accum=*/1,
           acc::VarInfo::kHostUse);
  // Compile once (plan + start offsets); run per iteration.
  const acc::Region::Compiled reduction = region.compile();

  HeatResult res;
  gpusim::GlobalView<double> cur = t1.view();
  gpusim::GlobalView<double> nxt = t2.view();

  for (int it = 0; it < opts.max_iterations; ++it) {
    // Stencil update: ordinary gang/vector parallel kernel (Fig. 3
    // mapping), identical for every compiler profile.
    auto update_stats = gpusim::launch(
        dev, {opts.config.num_gangs}, {opts.config.vector_length},
        0, [&](gpusim::ThreadCtx& ctx) {
          for (std::int64_t j = ctx.blockIdx.x + 1; j < nj - 1;
               j += ctx.gridDim.x) {
            for (std::int64_t i = ctx.threadIdx.x + 1; i < ni - 1;
                 i += ctx.blockDim.x) {
              const auto c = static_cast<std::size_t>(j * ni + i);
              const double v =
                  0.25 * (ctx.ld(cur, c - 1) + ctx.ld(cur, c + 1) +
                          ctx.ld(cur, c - static_cast<std::size_t>(ni)) +
                          ctx.ld(cur, c + static_cast<std::size_t>(ni)));
              ctx.st(nxt, c, v);
              ctx.alu(6);
            }
          }
        },
        gpusim::SimOptions{.label = "heat_update"});
    res.update_device_ms += update_stats.device_time_ns / 1e6;

    // Convergence check: the paper's max reduction (Fig. 13a).
    reduce::Bindings<double> b;
    b.contrib = [&, cur, nxt](gpusim::ThreadCtx& ctx, std::int64_t j,
                              std::int64_t, std::int64_t i) {
      // j, i arrive in the original [1, n-1) ranges (Fig. 3 start offsets).
      const auto c = static_cast<std::size_t>(j * ni + i);
      ctx.alu(2);
      return std::fabs(ctx.ld(cur, c) - ctx.ld(nxt, c));
    };
    auto red = reduction.run<double>(b);
    res.reduction_device_ms += red.stats.device_time_ns / 1e6;
    res.reduction_stats += red.stats;
    res.final_error = red.scalar.value_or(0.0);
    res.iterations = it + 1;

    std::swap(cur, nxt);
    if (res.final_error < opts.tolerance) {
      res.converged = true;
      break;
    }
  }
  res.total_device_ms = res.update_device_ms + res.reduction_device_ms;
  return res;
}

HeatResult run_heat_reference(const HeatOptions& opts) {
  const std::int64_t ni = opts.ni;
  const std::int64_t nj = opts.nj;
  std::vector<double> cur;
  std::vector<double> nxt;
  init_grid(cur, ni, nj, opts.boundary_temperature);
  nxt = cur;

  HeatResult res;
  for (int it = 0; it < opts.max_iterations; ++it) {
    double err = 0;
    for (std::int64_t j = 1; j < nj - 1; ++j) {
      for (std::int64_t i = 1; i < ni - 1; ++i) {
        const auto c = static_cast<std::size_t>(j * ni + i);
        nxt[c] = 0.25 * (cur[c - 1] + cur[c + 1] +
                         cur[c - static_cast<std::size_t>(ni)] +
                         cur[c + static_cast<std::size_t>(ni)]);
      }
    }
    for (std::int64_t j = 1; j < nj - 1; ++j) {
      for (std::int64_t i = 1; i < ni - 1; ++i) {
        const auto c = static_cast<std::size_t>(j * ni + i);
        err = std::max(err, std::fabs(cur[c] - nxt[c]));
      }
    }
    cur.swap(nxt);
    res.final_error = err;
    res.iterations = it + 1;
    if (err < opts.tolerance) {
      res.converged = true;
      break;
    }
  }
  return res;
}

}  // namespace accred::apps
