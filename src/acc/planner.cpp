#include "acc/planner.hpp"

#include <algorithm>

namespace accred::acc {

namespace {

std::int64_t extent_of(const NestIR& nest, Par p, std::int64_t fallback) {
  for (const LoopSpec& loop : nest.loops) {
    if (has(loop.par, p)) return loop.extent;
  }
  return fallback;
}

bool nest_has(const NestIR& nest, Par p) {
  return std::any_of(nest.loops.begin(), nest.loops.end(),
                     [&](const LoopSpec& l) { return has(l.par, p); });
}

}  // namespace

std::string_view to_string(StrategyKind k) {
  switch (k) {
    case StrategyKind::kVector: return "vector";
    case StrategyKind::kWorker: return "worker";
    case StrategyKind::kGang: return "gang";
    case StrategyKind::kWorkerVector: return "worker+vector";
    case StrategyKind::kGangWorker: return "gang+worker";
    case StrategyKind::kGangWorkerVector: return "gang+worker+vector";
    case StrategyKind::kSameLoop: return "same-loop";
    case StrategyKind::kFusedCascade: return "fused-cascade";
  }
  return "?";
}

ExecutionPlan plan_reduction(const NestIR& nest, const ReductionInfo& red,
                             const CompilerProfile& prof) {
  ExecutionPlan p;
  p.op = red.op;
  p.type = red.var.type;
  p.var = red.var.name;
  p.strategy = prof.strategy;
  p.launch = nest.config;

  // Levels absent from the nest collapse to a single thread in that
  // dimension — e.g. a gang+vector pair of loops runs with one worker.
  if (!nest_has(nest, Par::kWorker)) p.launch.num_workers = 1;
  if (!nest_has(nest, Par::kVector)) p.launch.vector_length = 1;
  if (!nest_has(nest, Par::kGang)) p.launch.num_gangs = 1;

  p.dims.nk = extent_of(nest, Par::kGang, 1);
  p.dims.nj = extent_of(nest, Par::kWorker, 1);
  p.dims.ni = extent_of(nest, Par::kVector, 1);

  const std::size_t g = p.launch.num_gangs;
  const std::size_t w = p.launch.num_workers;
  const std::size_t v = p.launch.vector_length;
  const std::size_t elem = size_of(p.type);
  const bool shared_staging =
      p.strategy.staging == reduce::Staging::kShared;

  if (red.same_loop) {
    // §3.2.2: one loop bound to several levels. The flat extent is the
    // accumulation loop's extent; unbound launch dimensions become 1.
    const LoopSpec& loop =
        nest.loops[static_cast<std::size_t>(red.var.accum_level)];
    if (!has(loop.par, Par::kWorker)) p.launch.num_workers = 1;
    if (!has(loop.par, Par::kVector)) p.launch.vector_length = 1;
    if (!has(loop.par, Par::kGang)) p.launch.num_gangs = 1;
    p.kind = StrategyKind::kSameLoop;
    p.same_loop_extent = loop.extent;
    p.global_buffer_elems = static_cast<std::size_t>(p.launch.num_gangs) *
                            p.launch.num_workers * p.launch.vector_length;
    p.kernel_count = 2;
    apply_strategy_quirks(prof.id, p.kind, p.strategy);
    return p;
  }

  const bool sg = has(red.span, Par::kGang);
  const bool sw = has(red.span, Par::kWorker);
  const bool sv = has(red.span, Par::kVector);

  if (sg && (sw || sv)) {
    // Gangs participate: global buffer + finalize kernel, §3.2.1. A
    // gang&vector span without a worker loop is handled as g+w+v with a
    // single worker.
    if (sv) {
      p.kind = StrategyKind::kGangWorkerVector;
      p.global_buffer_elems = g * w * v;
    } else {
      p.kind = StrategyKind::kGangWorker;
      p.global_buffer_elems = g * w;
    }
    p.kernel_count = 2;
  } else if (sg) {
    p.kind = StrategyKind::kGang;
    p.global_buffer_elems = g;  // partial[] of Fig. 5c
    p.kernel_count = 2;
  } else if (sw && sv) {
    p.kind = StrategyKind::kWorkerVector;
    if (shared_staging) {
      p.shared_bytes = w * v * elem;
    } else {
      p.global_buffer_elems = g * w * v;
    }
  } else if (sw) {
    p.kind = StrategyKind::kWorker;
    if (shared_staging) {
      const bool dup =
          p.strategy.worker_layout == reduce::WorkerLayout::kDuplicatedRows;
      p.shared_bytes = (dup ? v * w : w) * elem;
    } else {
      p.global_buffer_elems = g * w;
    }
  } else {
    p.kind = StrategyKind::kVector;
    if (shared_staging) {
      p.shared_bytes = w * v * elem;
    } else {
      p.global_buffer_elems = g * w * v;
    }
  }

  if (p.kernel_count == 2 &&
      p.strategy.staging == reduce::Staging::kGlobal) {
    // finalize kernel's own staging
    p.global_buffer_elems += p.strategy.finalize_threads;
  }
  apply_strategy_quirks(prof.id, p.kind, p.strategy);
  return p;
}

void apply_strategy_quirks(CompilerId id, StrategyKind kind,
                           reduce::StrategyConfig& sc) {
  // Table 2's gang-worker-vector and same-line rows show the modeled PGI
  // 20-30x behind OpenUH (232-256 ms vs 7-12 ms) — far beyond the 2-3x of
  // the nested single-level rows. That magnitude matches a flattened loop
  // whose per-thread chunks destroy coalescing; we model exactly that.
  if (id == CompilerId::kPgiLike &&
      (kind == StrategyKind::kSameLoop ||
       kind == StrategyKind::kGangWorkerVector)) {
    sc.assignment = reduce::Assignment::kBlocking;
  }
}

ExecutionPlan plan_single(const NestIR& nest, const CompilerProfile& prof) {
  const AnalysisResult res = analyze(nest, prof.discipline);
  if (res.reductions.size() != 1) {
    throw AnalysisError("plan_single expects exactly one reduction; nest has " +
                        std::to_string(res.reductions.size()));
  }
  return plan_reduction(nest, res.reductions.front(), prof);
}

ExecutionPlan plan_chain(const NestIR& nest, const AnalysisResult& analysis,
                         const ReductionChain& chain,
                         const CompilerProfile& prof) {
  if (chain.stages.size() < 2 || chain.stages.size() > 3) {
    throw AnalysisError("fused cascade supports 2 or 3 chained stages; got " +
                        std::to_string(chain.stages.size()));
  }
  ExecutionPlan p;
  p.kind = StrategyKind::kFusedCascade;
  p.strategy = prof.strategy;
  p.launch = nest.config;
  if (!nest_has(nest, Par::kWorker)) p.launch.num_workers = 1;
  if (!nest_has(nest, Par::kVector)) p.launch.vector_length = 1;
  if (!nest_has(nest, Par::kGang)) p.launch.num_gangs = 1;
  p.dims.nk = extent_of(nest, Par::kGang, 1);
  p.dims.nj = extent_of(nest, Par::kWorker, 1);
  p.dims.ni = extent_of(nest, Par::kVector, 1);

  for (const int idx : chain.stages) {
    if (idx < 0 ||
        static_cast<std::size_t>(idx) >= analysis.reductions.size()) {
      throw AnalysisError("chain stage index out of range");
    }
    const ReductionInfo& red =
        analysis.reductions[static_cast<std::size_t>(idx)];
    FusedStage stage;
    stage.op = red.op;
    stage.var = red.var.name;
    if (has(red.span, Par::kVector)) {
      stage.level = Par::kVector;
    } else if (has(red.span, Par::kWorker)) {
      stage.level = Par::kWorker;
    } else {
      stage.level = Par::kGang;
    }
    // Par encodes gang=1, worker=2, vector=4: one step outward halves it.
    if (!p.chain.empty() &&
        static_cast<int>(p.chain.back().level) !=
            static_cast<int>(stage.level) * 2) {
      throw AnalysisError(
          "fused cascade stages must climb adjacent levels "
          "(vector -> worker -> gang)");
    }
    p.chain.push_back(std::move(stage));
  }
  // Reporting fields mirror the outermost (last-folded) stage.
  p.op = p.chain.back().op;
  p.var = p.chain.back().var;
  p.type = analysis.reductions[static_cast<std::size_t>(chain.stages.front())]
               .var.type;

  const std::size_t g = p.launch.num_gangs;
  const std::size_t w = p.launch.num_workers;
  const std::size_t v = p.launch.vector_length;
  const std::size_t elem = size_of(p.type);
  // One slab serves every in-block stage: the vector trees need w x v
  // elements; the worker tree reuses the (dead, post-barrier) first w
  // slots afterwards instead of a second buffer — w <= w*v always.
  const bool has_vector = p.chain.front().level == Par::kVector;
  p.shared_bytes = (has_vector ? w * v : w) * elem;
  if (p.chain.back().level == Par::kGang) {
    p.global_buffer_elems = g;  // per-gang partials, Fig. 5c
    p.kernel_count = 2;
    if (p.strategy.staging == reduce::Staging::kGlobal) {
      p.global_buffer_elems += p.strategy.finalize_threads;
    }
  }
  apply_strategy_quirks(prof.id, p.kind, p.strategy);
  return p;
}

ExecutionPlan plan_chained(const NestIR& nest, const CompilerProfile& prof) {
  const AnalysisResult res = analyze(nest, prof.discipline);
  if (res.chains.size() != 1 ||
      res.chains.front().stages.size() != res.reductions.size()) {
    throw AnalysisError(
        "plan_chained expects the nest's reductions to form exactly one "
        "fusable chain");
  }
  return plan_chain(nest, res, res.chains.front(), prof);
}

}  // namespace accred::acc
