// High-level front door: build an annotated loop nest from OpenACC
// directive text, and run it through the full pipeline
// (parse -> analyze -> plan -> execute). This is the API the examples and
// applications use; it is the library equivalent of writing
//
//   #pragma acc parallel num_gangs(192) num_workers(8) vector_length(128)
//   #pragma acc loop gang
//   for (k = 0; k < NK; k++)
//     #pragma acc loop vector reduction(+:c)
//     for (i = 0; i < NI; i++) ...
//
// with loop bodies supplied as callables (see reduce::Bindings).
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>

#include "acc/collapse.hpp"
#include "acc/executor.hpp"
#include "acc/parser.hpp"

namespace accred::acc {

class Region {
public:
  explicit Region(gpusim::Device& dev,
                  const CompilerProfile& prof = profile(CompilerId::kOpenUH))
      : dev_(&dev), prof_(&prof) {}

  /// Apply a compute-construct directive ("parallel num_gangs(192) ...").
  Region& parallel(std::string_view directive) {
    const ParallelDirective d = parse_parallel_directive(directive);
    if (d.num_gangs) nest_.config.num_gangs = *d.num_gangs;
    if (d.num_workers) nest_.config.num_workers = *d.num_workers;
    if (d.vector_length) nest_.config.vector_length = *d.vector_length;
    return *this;
  }

  /// Append one loop ("loop gang reduction(+:sum)") of `extent` iterations,
  /// outermost first.
  Region& loop(std::string_view directive, std::int64_t extent) {
    const LoopDirective d = parse_loop_directive(directive);
    if (d.collapse != 1) {
      throw std::invalid_argument(
          "collapse(n) directives need the multi-extent loop() overload");
    }
    return push_loop(d, extent, 0);
  }

  /// Half-open range form `for (x = lower; x < upper; ...)`: the kernels
  /// add the start offset to each thread's index exactly as Fig. 3 does
  /// ("so that the working threads start from 0"), and bindings receive
  /// the original, unshifted indices.
  Region& loop(std::string_view directive, std::int64_t lower,
               std::int64_t upper) {
    const LoopDirective d = parse_loop_directive(directive);
    if (d.collapse != 1) {
      throw std::invalid_argument(
          "collapse(n) directives need the multi-extent loop() overload");
    }
    return push_loop(d, upper - lower, lower);
  }

  /// collapse(n) form: the directive binds `extents.size()` consecutive
  /// source loops to one level; bindings see the flat index and recover
  /// the originals with acc::decompose_index.
  Region& loop(std::string_view directive,
               std::initializer_list<std::int64_t> extents) {
    const LoopDirective d = parse_loop_directive(directive);
    if (static_cast<std::size_t>(d.collapse) != extents.size()) {
      throw std::invalid_argument(
          "collapse(" + std::to_string(d.collapse) + ") directive given " +
          std::to_string(extents.size()) + " loop extents");
    }
    return push_loop(d, collapsed_extent(std::span(extents.begin(),
                                                   extents.size())),
                     0);
  }

  /// Declare a reduction variable's semantics: its operand type, the loop
  /// whose body accumulates it, and where its value is next used
  /// (VarInfo::kHostUse for "after the region"). In OpenUH these facts come
  /// from the AST; here bodies are callables, so they are declared.
  Region& var(std::string name, DataType type, int accum_level,
              int use_level = VarInfo::kHostUse) {
    nest_.vars.push_back(VarInfo{std::move(name), type, accum_level,
                                 use_level});
    return *this;
  }

  /// Append an already-built loop spec (used by alternative front ends
  /// such as the OpenMP facade). Keeps the lower-bound table in sync.
  Region& add_loop(LoopSpec spec, std::int64_t lower = 0) {
    nest_.loops.push_back(std::move(spec));
    lowers_.push_back(lower);
    return *this;
  }

  [[nodiscard]] const NestIR& nest() const noexcept { return nest_; }
  [[nodiscard]] NestIR& nest() noexcept { return nest_; }

  /// Analyze and plan the nest's single reduction.
  [[nodiscard]] ExecutionPlan plan() const {
    return plan_single(nest_, *prof_);
  }

  /// A compiled region: the plan and start offsets resolved once, ready to
  /// run repeatedly (the OpenUH analogue: the kernel is generated once and
  /// launched per use — what an iterative solver like the heat equation
  /// does every time step).
  class Compiled {
  public:
    [[nodiscard]] const ExecutionPlan& plan() const noexcept { return plan_; }

    /// Execute with the given loop bodies. Bindings receive the original
    /// (offset-shifted) loop indices.
    template <typename T>
    reduce::ReduceResult<T> run(const reduce::Bindings<T>& b) const {
      if (lk_ == 0 && lj_ == 0 && li_ == 0) {
        return execute<T>(*dev_, plan_, b);
      }
      // Shift the 0-based kernel indices back to the user's ranges; the -1
      // sentinel for unused levels passes through untouched.
      const std::int64_t lk = lk_;
      const std::int64_t lj = lj_;
      const std::int64_t li = li_;
      auto sk = [lk](std::int64_t k) { return k < 0 ? k : k + lk; };
      auto sj = [lj](std::int64_t j) { return j < 0 ? j : j + lj; };
      auto si = [li](std::int64_t i) { return i < 0 ? i : i + li; };
      reduce::Bindings<T> w = b;
      w.contrib = [f = b.contrib, sk, sj, si](gpusim::ThreadCtx& ctx,
                                              std::int64_t k, std::int64_t j,
                                              std::int64_t i) {
        return f(ctx, sk(k), sj(j), si(i));
      };
      if (b.parallel_work) {
        w.parallel_work = [f = b.parallel_work, sk, sj, si](
                              gpusim::ThreadCtx& ctx, std::int64_t k,
                              std::int64_t j, std::int64_t i) {
          f(ctx, sk(k), sj(j), si(i));
        };
      }
      if (b.instance_init) {
        w.instance_init = [f = b.instance_init, sk, sj](std::int64_t k,
                                                        std::int64_t j) {
          return f(sk(k), sj(j));
        };
      }
      if (b.sink) {
        w.sink = [f = b.sink, sk, sj](gpusim::ThreadCtx& ctx, std::int64_t k,
                                      std::int64_t j, T r) {
          f(ctx, sk(k), sj(j), r);
        };
      }
      return execute<T>(*dev_, plan_, w);
    }

  private:
    friend class Region;
    Compiled(gpusim::Device& dev, ExecutionPlan plan, std::int64_t lk,
             std::int64_t lj, std::int64_t li)
        : dev_(&dev), plan_(std::move(plan)), lk_(lk), lj_(lj), li_(li) {}

    gpusim::Device* dev_;
    ExecutionPlan plan_;
    std::int64_t lk_;
    std::int64_t lj_;
    std::int64_t li_;
  };

  /// Analyze and plan once; the returned handle runs without re-planning.
  [[nodiscard]] Compiled compile() const {
    if (lowers_.size() != nest_.loops.size()) {
      throw std::logic_error(
          "Region loop/lower-bound tables out of sync; add loops through "
          "loop()/add_loop()");
    }
    std::int64_t lk = 0;
    std::int64_t lj = 0;
    std::int64_t li = 0;
    for (std::size_t l = 0; l < nest_.loops.size(); ++l) {
      if (has(nest_.loops[l].par, Par::kGang)) lk = lowers_[l];
      if (has(nest_.loops[l].par, Par::kWorker)) lj = lowers_[l];
      if (has(nest_.loops[l].par, Par::kVector)) li = lowers_[l];
    }
    return Compiled(*dev_, plan(), lk, lj, li);
  }

  /// Plan and execute with the given loop bodies (one-shot convenience).
  template <typename T>
  reduce::ReduceResult<T> run(const reduce::Bindings<T>& b) const {
    return compile().run<T>(b);
  }

private:
  Region& push_loop(const LoopDirective& d, std::int64_t extent,
                    std::int64_t lower) {
    LoopSpec spec;
    spec.par = d.seq ? 0 : d.par;
    spec.extent = extent;
    spec.reductions = d.reductions;
    // gang(n) / worker(n) / vector(n) size arguments override the compute
    // construct's launch shape.
    if (d.gang_size) nest_.config.num_gangs = *d.gang_size;
    if (d.worker_size) nest_.config.num_workers = *d.worker_size;
    if (d.vector_size) nest_.config.vector_length = *d.vector_size;
    nest_.loops.push_back(std::move(spec));
    lowers_.push_back(lower);
    return *this;
  }

  gpusim::Device* dev_;
  const CompilerProfile* prof_;
  NestIR nest_;
  std::vector<std::int64_t> lowers_;
};

}  // namespace accred::acc
