// Executes an ExecutionPlan on the simulated device by dispatching to the
// strategy kernels of src/reduce/. This is the "run the generated kernel"
// stage; codegen/cuda_emitter.hpp is its source-text twin.
#pragma once

#include <stdexcept>

#include "acc/planner.hpp"
#include "gpusim/device.hpp"
#include "reduce/gang_reduce.hpp"
#include "reduce/rmp_reduce.hpp"
#include "reduce/vector_reduce.hpp"
#include "reduce/worker_reduce.hpp"

namespace accred::acc {

/// Run `plan` with the given loop-body bindings. T must match plan.type.
template <typename T>
reduce::ReduceResult<T> execute(gpusim::Device& dev, const ExecutionPlan& plan,
                                const reduce::Bindings<T>& b) {
  if (data_type_of<T>() != plan.type) {
    throw std::invalid_argument(
        "execute<T>: T does not match the planned operand type");
  }
  switch (plan.kind) {
    case StrategyKind::kVector:
      return reduce::run_vector_reduction<T>(dev, plan.dims, plan.launch,
                                             plan.op, b, plan.strategy);
    case StrategyKind::kWorker:
      return reduce::run_worker_reduction<T>(dev, plan.dims, plan.launch,
                                             plan.op, b, plan.strategy);
    case StrategyKind::kGang:
      return reduce::run_gang_reduction<T>(dev, plan.dims, plan.launch,
                                           plan.op, b, plan.strategy);
    case StrategyKind::kWorkerVector:
      return reduce::run_worker_vector_reduction<T>(
          dev, plan.dims, plan.launch, plan.op, b, plan.strategy);
    case StrategyKind::kGangWorker:
      return reduce::run_gang_worker_reduction<T>(
          dev, plan.dims, plan.launch, plan.op, b, plan.strategy);
    case StrategyKind::kGangWorkerVector:
      return reduce::run_gang_worker_vector_reduction<T>(
          dev, plan.dims, plan.launch, plan.op, b, plan.strategy);
    case StrategyKind::kSameLoop:
      return reduce::run_same_loop_reduction<T>(dev, plan.same_loop_extent,
                                                plan.launch, plan.op, b,
                                                plan.strategy);
  }
  throw std::logic_error("unreachable strategy kind");
}

}  // namespace accred::acc
