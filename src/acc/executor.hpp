// Executes an ExecutionPlan on the simulated device by dispatching to the
// strategy kernels of src/reduce/. This is the "run the generated kernel"
// stage; codegen/cuda_emitter.hpp is its source-text twin.
//
// execute() is the bare dispatch: any device-side failure (watchdog trip,
// injected fault, OOM) escapes as gpusim::LaunchError. execute_guarded()
// wraps it in the graceful-degradation policy of DESIGN.md §11: re-run a
// failed attempt up to GuardPolicy::max_retries times, then walk a
// degradation ladder — all-barriers tree first, then progressively smaller
// launch geometry — until the run succeeds or the ladder is exhausted.
#pragma once

#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "acc/planner.hpp"
#include "gpusim/device.hpp"
#include "gpusim/error.hpp"
#include "gpusim/faultinject.hpp"
#include "obs/trace.hpp"
#include "reduce/fused_cascade.hpp"
#include "reduce/gang_reduce.hpp"
#include "reduce/rmp_reduce.hpp"
#include "reduce/vector_reduce.hpp"
#include "reduce/worker_reduce.hpp"

namespace accred::acc {

/// Run `plan` with the given loop-body bindings. T must match plan.type.
template <typename T>
reduce::ReduceResult<T> execute(gpusim::Device& dev, const ExecutionPlan& plan,
                                const reduce::Bindings<T>& b) {
  if (data_type_of<T>() != plan.type) {
    throw std::invalid_argument(
        "execute<T>: T does not match the planned operand type");
  }
  switch (plan.kind) {
    case StrategyKind::kVector:
      return reduce::run_vector_reduction<T>(dev, plan.dims, plan.launch,
                                             plan.op, b, plan.strategy);
    case StrategyKind::kWorker:
      return reduce::run_worker_reduction<T>(dev, plan.dims, plan.launch,
                                             plan.op, b, plan.strategy);
    case StrategyKind::kGang:
      return reduce::run_gang_reduction<T>(dev, plan.dims, plan.launch,
                                           plan.op, b, plan.strategy);
    case StrategyKind::kWorkerVector:
      return reduce::run_worker_vector_reduction<T>(
          dev, plan.dims, plan.launch, plan.op, b, plan.strategy);
    case StrategyKind::kGangWorker:
      return reduce::run_gang_worker_reduction<T>(
          dev, plan.dims, plan.launch, plan.op, b, plan.strategy);
    case StrategyKind::kGangWorkerVector:
      return reduce::run_gang_worker_vector_reduction<T>(
          dev, plan.dims, plan.launch, plan.op, b, plan.strategy);
    case StrategyKind::kSameLoop:
      return reduce::run_same_loop_reduction<T>(dev, plan.same_loop_extent,
                                                plan.launch, plan.op, b,
                                                plan.strategy);
    case StrategyKind::kFusedCascade: {
      // The generic Bindings only carry a scalar observable, so this
      // dispatch covers gang-terminated chains (which return one); chains
      // ending below the gang level need run_fused_chain with explicit
      // per-stage sinks.
      if (plan.chain.empty() || plan.chain.back().level != Par::kGang) {
        throw std::invalid_argument(
            "execute<T>: fused chains not ending at the gang level need "
            "run_fused_chain with per-stage sinks");
      }
      reduce::FusedChainBindings<T> fb;
      fb.contrib = b.contrib;
      fb.parallel_work = b.parallel_work;
      if (b.instance_init) {
        if (plan.chain.front().level == Par::kVector) {
          fb.vector_init = b.instance_init;
        } else {
          fb.worker_init = [&b](std::int64_t k) {
            return b.instance_init(k, -1);
          };
        }
      }
      fb.host_init = b.host_init;
      fb.host_init_set = b.host_init_set;
      return reduce::run_fused_chain<T>(dev, plan.chain, plan.dims,
                                        plan.launch, fb, plan.strategy);
    }
  }
  throw std::logic_error("unreachable strategy kind");
}

/// Retry/fallback policy for execute_guarded().
struct GuardPolicy {
  /// Same-configuration re-runs after a failed attempt before the ladder
  /// degrades the plan.
  int max_retries = 1;
  /// Permit the degradation rungs below retries (all-barriers tree, then
  /// geometry shrink). Off = fail after the retries.
  bool degrade = true;
  /// Degradation rungs the ladder may descend when `degrade` is on: -1 =
  /// unlimited (the full ladder), 0 = none (equivalent to degrade off), N
  /// = stop after the Nth plan change. Lets a service bound how much work
  /// one failing job may consume.
  int max_degrade_rungs = -1;
  /// Hard cap on total attempts across every rung (0 = unlimited). The
  /// first attempt always runs; the ladder gives up once the cap is spent.
  /// This is the hook a per-tenant retry budget debits against.
  int max_total_attempts = 0;
};

/// One failed attempt and what the executor did about it.
struct DegradeEvent {
  int attempt = 0;  ///< 1-based attempt that failed
  int rung = 0;     ///< ladder rung the attempt ran on (0 = as planned)
  int failure_on_rung = 0;  ///< 1-based failure ordinal within that rung
  gpusim::LaunchErrorCode code = gpusim::LaunchErrorCode::kNone;
  std::string reason;  ///< rendered error / guard diagnostic
  std::string action;  ///< "retry", "strip non-sticky faults", rung change…
};

/// Outcome of a guarded execution. `ok == false` means every rung of the
/// ladder failed; `error` then holds the last failure (the events list has
/// the full history either way).
template <typename T>
struct GuardedResult {
  bool ok = false;
  reduce::ReduceResult<T> result{};  ///< of the successful attempt
  ExecutionPlan plan{};              ///< the plan that finally ran
  int attempts = 0;
  bool recovered = false;  ///< succeeded after at least one failure
  bool degraded = false;   ///< succeeded on a degraded rung
  std::vector<DegradeEvent> events;
  gpusim::LaunchErrorInfo error{};  ///< terminal failure when !ok
  /// Fault bookkeeping aggregated over every attempt: completed launches
  /// contribute their LaunchStats::fault_events; failed attempts
  /// contribute the events their LaunchError carried (the launch's stats
  /// are lost with the exception), or one synthesized event for injected
  /// errors that recorded none (device-side alloc_fail).
  bool faults_armed = false;
  std::vector<gpusim::FaultEvent> fault_events;
};

namespace detail {

/// FaultKind a thrown injected error corresponds to (only warp_abort and
/// alloc_fail surface as exceptions; the data faults corrupt silently).
inline gpusim::FaultKind fault_kind_of(gpusim::LaunchErrorCode code) {
  return code == gpusim::LaunchErrorCode::kOom
             ? gpusim::FaultKind::kAllocFail
             : gpusim::FaultKind::kWarpAbort;
}

}  // namespace detail

/// Run `plan` under the graceful-degradation policy. `verify` (optional)
/// is the numeric guard: it sees the completed result and returns false —
/// filling `detail` — when the values are unacceptable (the testsuite
/// runner passes its sequential-reference check here). A non-finite
/// floating scalar fails the guard unconditionally. Failed attempts walk:
///
///   rung 0  as planned; after the first failure, non-sticky injected
///           faults are stripped (a deterministic injector fails every
///           retry identically), then up to max_retries same-rung re-runs
///   rung 1  warp-synchronous tail off (tree.unroll_last_warp = false)
///   rung 2+ halve vector_length (floor 32), then num_workers (floor 1)
///
/// Never throws LaunchError: terminal failure comes back in the result.
template <typename T>
GuardedResult<T> execute_guarded(
    gpusim::Device& dev, ExecutionPlan plan, const reduce::Bindings<T>& b,
    const GuardPolicy& policy = {},
    const std::function<bool(const reduce::ReduceResult<T>&, std::string&)>&
        verify = {}) {
  GuardedResult<T> out;
  gpusim::SimOptions& sim = plan.strategy.sim;

  // Normalize the fault source to one spec string so retry stripping works
  // the same for SimOptions::faults, a pre-resolved plan, and the env
  // default.
  std::string spec = sim.fault_plan != nullptr ? sim.fault_plan->to_spec()
                     : !sim.faults.empty()     ? sim.faults
                                           : gpusim::faults_env_default();
  sim.fault_plan = nullptr;

  int failures_on_rung = 0;
  int rung = 0;  // plan changes so far; DegradeEvent::rung and the
                 // GuardPolicy::max_degrade_rungs bound both count these
  const auto may_degrade = [&policy, &rung] {
    return policy.degrade &&
           (policy.max_degrade_rungs < 0 || rung < policy.max_degrade_rungs);
  };
  for (;;) {
    ++out.attempts;
    gpusim::FaultPlan faults;
    if (!spec.empty()) faults = gpusim::FaultPlan::parse(spec);
    out.faults_armed = out.faults_armed || !faults.empty();
    sim.faults = spec;
    // Alloc-fail arms are one-shot on the device; re-arm the current set
    // each attempt so sticky alloc faults keep firing down the ladder.
    if (faults.has_alloc_faults()) {
      dev.arm_alloc_faults(faults);
    } else {
      dev.clear_alloc_faults();
    }

    const auto append_events = [&](std::vector<gpusim::FaultEvent> evs) {
      for (gpusim::FaultEvent& e : evs) {
        if (out.fault_events.size() >=
            gpusim::BlockFaults::kMaxEventsPerLaunch) {
          break;
        }
        out.fault_events.push_back(std::move(e));
      }
    };

    gpusim::LaunchErrorInfo fail;
    try {
      reduce::ReduceResult<T> res = execute<T>(dev, plan, b);
      append_events(std::move(res.stats.fault_events));
      std::string detail;
      bool good = true;
      if constexpr (std::is_floating_point_v<T>) {
        if (res.scalar && !std::isfinite(*res.scalar)) {
          good = false;
          detail = "non-finite scalar result";
        }
      }
      if (good && verify && !verify(res, detail)) good = false;
      if (good) {
        out.ok = true;
        out.result = std::move(res);
        out.plan = plan;
        out.recovered = out.attempts > 1;
        dev.clear_alloc_faults();
        return out;
      }
      fail.code = gpusim::LaunchErrorCode::kNumericGuard;
      fail.message =
          detail.empty() ? "result failed the numeric guard" : detail;
    } catch (const gpusim::LaunchError& e) {
      fail = e.info();
      // Faults that fired before the launch died ride on the error (the
      // attempt's stats are gone) — e.g. a skip_barrier whose race got
      // escalated, or a bitflip in an earlier block of the aborting shard.
      const bool carried = !fail.fired.empty();
      append_events(std::move(fail.fired));
      fail.fired.clear();
      // Synthesize an event only when the injected error recorded none
      // itself (an alloc_fail fires on the Device, outside BlockFaults).
      if (fail.injected && !carried) {
        gpusim::FaultEvent ev;
        ev.kind = detail::fault_kind_of(fail.code);
        ev.block = fail.block;
        ev.warp = fail.warp;
        ev.stage = fail.stage;
        ev.detail = fail.message;
        append_events({std::move(ev)});
      }
    }

    DegradeEvent ev;
    ev.attempt = out.attempts;
    ev.rung = rung;
    ev.code = fail.code;
    ev.reason = to_string(fail);
    ++failures_on_rung;
    ev.failure_on_rung = failures_on_rung;

    // Decide the next move. A client cancellation is terminal before any
    // ladder logic runs — retrying or degrading a job the client no longer
    // wants only burns device time (and the token would fail every retry
    // identically anyway). Then the attempt budget: once spent, the ladder
    // may not launch again regardless of remaining rungs. Then the normal
    // ladder, where stripping non-sticky faults is always the first
    // response to a failure with faults armed: the injector is
    // deterministic, so an unmodified retry would fail identically.
    const std::string sticky = faults.sticky_spec();
    if (fail.code == gpusim::LaunchErrorCode::kCancelled) {
      ev.action = "cancelled: give up";
      out.events.push_back(std::move(ev));
      out.plan = plan;
      out.error = std::move(fail);
      out.degraded = false;
      dev.clear_alloc_faults();
      return out;
    }
    if (policy.max_total_attempts > 0 &&
        out.attempts >= policy.max_total_attempts) {
      ev.action = "attempt budget exhausted: give up";
      out.events.push_back(std::move(ev));
      out.plan = plan;
      out.error = std::move(fail);
      out.degraded = false;
      dev.clear_alloc_faults();
      return out;
    }
    if (out.attempts == 1 && sticky != spec) {
      spec = sticky;
      ev.action = "strip non-sticky faults and retry";
    } else if (failures_on_rung <= policy.max_retries) {
      ev.action = "retry";
    } else if (may_degrade() && plan.strategy.tree.unroll_last_warp) {
      plan.strategy.tree.unroll_last_warp = false;
      out.degraded = true;
      failures_on_rung = 0;
      ++rung;
      ev.action = "degrade: all-barriers tree (unroll_last_warp off)";
    } else if (may_degrade() && plan.launch.vector_length > 32) {
      const std::uint32_t prev = plan.launch.vector_length;
      plan.launch.vector_length = prev / 2;
      out.degraded = true;
      failures_on_rung = 0;
      ++rung;
      ev.action = "degrade: vector_length " + std::to_string(prev) + " -> " +
                  std::to_string(plan.launch.vector_length);
    } else if (may_degrade() && plan.launch.num_workers > 1) {
      const std::uint32_t prev = plan.launch.num_workers;
      plan.launch.num_workers = prev / 2;
      out.degraded = true;
      failures_on_rung = 0;
      ++rung;
      ev.action = "degrade: num_workers " + std::to_string(prev) + " -> " +
                  std::to_string(plan.launch.num_workers);
    } else {
      // Ladder exhausted.
      ev.action = "give up";
      out.events.push_back(std::move(ev));
      out.plan = plan;  // the bottom rung: what the last attempt ran
      out.error = std::move(fail);
      out.degraded = false;  // only a *successful* degraded run counts
      dev.clear_alloc_faults();
      return out;
    }
    if (obs::trace_enabled()) {
      obs::trace_complete(
          "degrade", 0, obs::trace_now_us(), 0,
          {{"attempt", static_cast<double>(ev.attempt)},
           {"code", static_cast<double>(static_cast<int>(ev.code))}});
    }
    out.events.push_back(std::move(ev));
  }
}

}  // namespace accred::acc
