// OpenMP 4.0 front end (§6): "A similar reduction methodology can also be
// applied to other programming models such as OpenMP 4.0. OpenMP
// demonstrates two levels of parallelism and it just needs to ignore the
// worker if our implementation strategy is used."
//
// This facade parses `omp target teams distribute` / `omp parallel for
// [simd]` directives and lowers them onto the same nest IR with
// teams -> gang, parallel-for/simd threads -> vector, num_workers = 1.
#pragma once

#include "acc/region.hpp"

namespace accred::acc {

/// Parsed `#pragma omp ...` line (the subset §6 needs).
struct OmpDirective {
  bool teams = false;         ///< teams distribute -> gang
  bool parallel_for = false;  ///< parallel for -> vector threads
  bool simd = false;          ///< simd -> vector lanes (merged with above)
  std::optional<std::uint32_t> num_teams;
  std::optional<std::uint32_t> num_threads;
  std::vector<ReductionClause> reductions;
};

[[nodiscard]] OmpDirective parse_omp_directive(std::string_view text);

/// Region-like builder for OpenMP target regions. Two-level: a directive
/// with `teams` binds gang, one with `parallel for` and/or `simd` binds
/// vector; a single directive may carry both (combined construct).
class OmpTarget {
public:
  explicit OmpTarget(gpusim::Device& dev,
                     const CompilerProfile& prof = profile(CompilerId::kOpenUH))
      : region_(dev, prof) {
    // §6: ignore the worker level.
    region_.parallel("parallel num_workers(1)");
  }

  OmpTarget& loop(std::string_view directive, std::int64_t extent) {
    const OmpDirective d = parse_omp_directive(directive);
    ParMask par = 0;
    if (d.teams) par |= mask_of(Par::kGang);
    if (d.parallel_for || d.simd) par |= mask_of(Par::kVector);
    if (par == 0) {
      throw std::invalid_argument(
          "OpenMP loop directive binds no parallelism (need teams, "
          "parallel for, or simd)");
    }
    if (d.num_teams) region_.nest().config.num_gangs = *d.num_teams;
    if (d.num_threads) region_.nest().config.vector_length = *d.num_threads;

    LoopSpec spec;
    spec.par = par;
    spec.extent = extent;
    spec.reductions = d.reductions;
    region_.add_loop(std::move(spec));
    return *this;
  }

  OmpTarget& var(std::string name, DataType type, int accum_level,
                 int use_level = VarInfo::kHostUse) {
    region_.var(std::move(name), type, accum_level, use_level);
    return *this;
  }

  [[nodiscard]] ExecutionPlan plan() const { return region_.plan(); }

  template <typename T>
  reduce::ReduceResult<T> run(const reduce::Bindings<T>& b) const {
    return region_.run<T>(b);
  }

  [[nodiscard]] const NestIR& nest() const noexcept { return region_.nest(); }

private:
  Region region_;
};

}  // namespace accred::acc
