// collapse(n) support (§4: "the user can use collapse clause in OpenACC
// if the loop level is more than three"): a directive with collapse(n)
// binds n consecutive source loops to one parallelism level. The IR keeps
// one loop with the product extent; bindings recover the original indices
// with decompose_index.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>

namespace accred::acc {

/// Product of the collapsed extents, with overflow checking.
[[nodiscard]] inline std::int64_t collapsed_extent(
    std::span<const std::int64_t> extents) {
  std::int64_t product = 1;
  for (std::int64_t e : extents) {
    if (e <= 0) throw std::invalid_argument("collapsed extent must be > 0");
    if (product > (std::int64_t{1} << 62) / e) {
      throw std::invalid_argument("collapsed iteration space overflows");
    }
    product *= e;
  }
  return product;
}

/// Recover the original loop indices (outermost first) from the flat
/// collapsed index, row-major as the OpenACC collapse clause specifies.
template <std::size_t N>
[[nodiscard]] std::array<std::int64_t, N> decompose_index(
    std::int64_t flat, const std::array<std::int64_t, N>& extents) {
  std::array<std::int64_t, N> idx{};
  for (std::size_t l = N; l-- > 0;) {
    idx[l] = flat % extents[l];
    flat /= extents[l];
  }
  return idx;
}

}  // namespace accred::acc
