// Compiler strategy profiles. `openuh` is the paper's contribution,
// implemented in full. `caps_like` and `pgi_like` model the two commercial
// comparators from their observable, paper-documented behaviour: strategy
// choices that explain the performance gaps of §4, a clause discipline
// that explains the Fig. 9 robustness gap, and a Table-2 robustness matrix
// mirroring the F / CE cells (the closed compilers' bugs are *declared*
// here, never silently mis-computed — see DESIGN.md §2).
#pragma once

#include <string>
#include <string_view>

#include "acc/analysis.hpp"
#include "acc/ir.hpp"
#include "reduce/strategy.hpp"

namespace accred::acc {

enum class CompilerId : std::uint8_t { kOpenUH, kCapsLike, kPgiLike };

[[nodiscard]] constexpr std::string_view to_string(CompilerId id) {
  switch (id) {
    case CompilerId::kOpenUH: return "openuh";
    case CompilerId::kCapsLike: return "caps_like";
    case CompilerId::kPgiLike: return "pgi_like";
  }
  return "?";
}

struct CompilerProfile {
  CompilerId id = CompilerId::kOpenUH;
  ClauseDiscipline discipline = ClauseDiscipline::kAutoDetect;
  reduce::StrategyConfig strategy{};
};

[[nodiscard]] const CompilerProfile& profile(CompilerId id);

/// The reduction positions of the paper's testsuite (Table 2 rows).
enum class Position : std::uint8_t {
  kGang,
  kWorker,
  kVector,
  kGangWorker,
  kWorkerVector,
  kGangWorkerVector,
  kSameLineGangWorkerVector,
};

[[nodiscard]] std::string_view to_string(Position p);

/// Modeled robustness of each compiler on each Table-2 cell. kOk cells run
/// the profile's real strategy implementation; failures reproduce the
/// paper's observed F ("test FAILED") and CE ("compile time error") cells.
enum class Robustness : std::uint8_t {
  kOk,
  kRuntimeFailure,
  kCompileError,
};

[[nodiscard]] Robustness table2_robustness(CompilerId id, Position pos,
                                           ReductionOp op, DataType type);

}  // namespace accred::acc
