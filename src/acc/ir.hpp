// Loop-nest intermediate representation: what the OpenACC front end hands
// to reduction-span analysis and the strategy planner. This corresponds to
// the annotated-loop-tree stage of the OpenUH pipeline (after the C/Fortran
// AST has been lowered; we take the lowered form as input since loop bodies
// arrive as callables rather than source text).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "acc/ops.hpp"
#include "acc/types.hpp"

namespace accred::acc {

/// Parallelism bindings a loop can carry (OpenACC loop construct).
enum class Par : std::uint8_t {
  kGang = 1,
  kWorker = 2,
  kVector = 4,
};
using ParMask = std::uint8_t;

[[nodiscard]] constexpr ParMask mask_of(Par p) {
  return static_cast<ParMask>(p);
}
[[nodiscard]] constexpr bool has(ParMask m, Par p) {
  return (m & mask_of(p)) != 0;
}
[[nodiscard]] constexpr ParMask operator|(Par a, Par b) {
  return static_cast<ParMask>(mask_of(a) | mask_of(b));
}
[[nodiscard]] constexpr ParMask operator|(ParMask a, Par b) {
  return static_cast<ParMask>(a | mask_of(b));
}

[[nodiscard]] std::string par_mask_to_string(ParMask m);

/// reduction(op:var) as written on a loop construct. `array_len > 0`
/// marks the array-reduction extension syntax reduction(op:var[0:len])
/// (§5's Komoda et al. feature; the OpenACC spec of the paper's era only
/// allowed scalars).
struct ReductionClause {
  ReductionOp op = ReductionOp::kSum;
  std::string var;
  std::int64_t array_len = 0;

  friend bool operator==(const ReductionClause&,
                         const ReductionClause&) = default;
};

/// One loop of the nest, outermost first.
struct LoopSpec {
  ParMask par = 0;  ///< 0 = sequential
  std::int64_t extent = 0;
  std::vector<ReductionClause> reductions;
};

/// Launch shape (the paper's num_gangs / num_workers / vector_length).
struct LaunchConfig {
  std::uint32_t num_gangs = 192;     ///< 12 usable SMs x 16 blocks (§4)
  std::uint32_t num_workers = 8;     ///< 1024-thread blocks / vector 128
  std::uint32_t vector_length = 128; ///< quad warp scheduler x warp size
};

/// Semantic facts about a reduction variable that the real compiler reads
/// off the AST (definition, accumulation site, next use); supplied
/// alongside the nest because loop bodies reach us as opaque callables.
struct VarInfo {
  std::string name;
  DataType type = DataType::kInt32;
  /// Index of the loop whose body accumulates into the variable.
  int accum_level = 0;
  /// Index of the loop in whose body the result is next read;
  /// kHostUse means the value is consumed after the whole nest.
  int use_level = -1;

  static constexpr int kHostUse = -1;
};

/// A full annotated nest.
struct NestIR {
  std::vector<LoopSpec> loops;  ///< outermost first
  std::vector<VarInfo> vars;
  LaunchConfig config;
};

/// Union of the parallelism bindings of loops (from, to], i.e. the levels a
/// reduction crosses between its point of use and its accumulation site.
[[nodiscard]] ParMask span_between(const NestIR& nest, int use_level,
                                   int accum_level);

}  // namespace accred::acc
