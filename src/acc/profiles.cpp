#include "acc/profiles.hpp"

namespace accred::acc {

namespace {

CompilerProfile make_openuh() {
  CompilerProfile p;
  p.id = CompilerId::kOpenUH;
  p.discipline = ClauseDiscipline::kAutoDetect;
  // All defaults in StrategyConfig are the OpenUH choices: shared staging,
  // row-contiguous / first-row layouts, window-sliding assignment, fully
  // unrolled tree with a warp-synchronous tail.
  return p;
}

CompilerProfile make_caps_like() {
  CompilerProfile p;
  p.id = CompilerId::kCapsLike;
  // Fig. 9: "The CAPS compiler adds the reduction clause to both the
  // worker and vector loops, failing which incorrect result is generated."
  p.discipline = ClauseDiscipline::kExplicitAllLevels;
  // Fig. 6b / 8b: the transposed and duplicated-rows stagings are the
  // alternative layouts the paper contrasts OpenUH against.
  p.strategy.vector_layout = reduce::VectorLayout::kTransposed;
  p.strategy.worker_layout = reduce::WorkerLayout::kDuplicatedRows;
  p.strategy.tree.unroll_last_warp = false;  // block barriers throughout
  return p;
}

CompilerProfile make_pgi_like() {
  CompilerProfile p;
  p.id = CompilerId::kPgiLike;
  p.discipline = ClauseDiscipline::kAutoDetect;
  // Modeled from the Table 2 gaps: a 2-3x slowdown on every single-level
  // case (consistent with the private accumulator living in spilled local
  // memory — a read-modify-write of global DRAM per contribution), plus
  // global staging and a rolled tree without the warp-synchronous tail.
  // The 20-30x collapses on the flattened RMP rows get an uncoalesced
  // (blocking) assignment via apply_strategy_quirks below.
  p.strategy.staging = reduce::Staging::kGlobal;
  p.strategy.spill_private = true;
  p.strategy.tree.unroll_last_warp = false;
  p.strategy.tree.full_unroll = false;
  return p;
}

}  // namespace

const CompilerProfile& profile(CompilerId id) {
  static const CompilerProfile openuh = make_openuh();
  static const CompilerProfile caps = make_caps_like();
  static const CompilerProfile pgi = make_pgi_like();
  switch (id) {
    case CompilerId::kOpenUH: return openuh;
    case CompilerId::kCapsLike: return caps;
    case CompilerId::kPgiLike: return pgi;
  }
  return openuh;
}

std::string_view to_string(Position p) {
  switch (p) {
    case Position::kGang: return "gang";
    case Position::kWorker: return "worker";
    case Position::kVector: return "vector";
    case Position::kGangWorker: return "gang worker";
    case Position::kWorkerVector: return "worker vector";
    case Position::kGangWorkerVector: return "gang worker vector";
    case Position::kSameLineGangWorkerVector:
      return "same line gang worker vector";
  }
  return "?";
}

Robustness table2_robustness(CompilerId id, Position pos, ReductionOp op,
                             DataType type) {
  // Source: the F and CE cells of the paper's Table 2 (evaluated with
  // PGI 13.10 and CAPS 3.4.0; only + and * were published). Cells outside
  // the published grid are assumed kOk.
  if (id == CompilerId::kPgiLike) {
    if (op == ReductionOp::kSum &&
        (pos == Position::kWorker || pos == Position::kVector ||
         pos == Position::kGangWorker)) {
      return Robustness::kRuntimeFailure;
    }
    if (pos == Position::kGangWorkerVector) {
      if (op == ReductionOp::kSum) return Robustness::kCompileError;
      if (op == ReductionOp::kProd && type != DataType::kInt32) {
        return Robustness::kCompileError;
      }
    }
  }
  if (id == CompilerId::kCapsLike) {
    if (op == ReductionOp::kSum &&
        (pos == Position::kGangWorker || pos == Position::kWorkerVector ||
         pos == Position::kGangWorkerVector)) {
      return Robustness::kRuntimeFailure;
    }
  }
  return Robustness::kOk;
}

}  // namespace accred::acc
