// Reduction-span analysis and nest validation (§3.2.1).
//
// OpenUH "can automatically detect the position of the reduction variable":
// the user writes the clause once, on the loop closest to the next use of
// the variable, and the compiler derives which parallelism levels the
// reduction spans — every level between the use point and the accumulation
// site. The CAPS discipline instead requires the clause on every spanned
// level, "failing which incorrect result is generated" (Fig. 9); we model
// that as a hard analysis error rather than silently computing garbage.
#pragma once

#include <string>
#include <vector>

#include "acc/ir.hpp"

namespace accred::acc {

/// How reduction clauses must be written for this compiler.
enum class ClauseDiscipline : std::uint8_t {
  kAutoDetect,         ///< OpenUH: one clause anywhere within the span
  kExplicitAllLevels,  ///< CAPS-like: a clause on every spanned loop
};

/// One analyzed reduction variable, ready for planning.
struct ReductionInfo {
  VarInfo var;
  ReductionOp op = ReductionOp::kSum;
  ParMask span = 0;        ///< parallelism levels the reduction crosses
  bool same_loop = false;  ///< the whole span sits on one multi-bound loop
  int clause_level = -1;   ///< outermost loop carrying the clause
};

/// A producer→consumer reduction chain (§3.2's cascade, Fig. 4): stage
/// s+1 consumes the consolidated value of stage s in its own loop body
/// (`use_level` of the producer == `accum_level` of the consumer). Stages
/// are indices into AnalysisResult::reductions, innermost producer first —
/// for Fig. 4 that is [i_sum (vector), j_sum (worker), sum (gang)]. The
/// planner lowers a chain to one fused plan (StrategyKind::kFusedCascade)
/// instead of one launch per stage.
struct ReductionChain {
  std::vector<int> stages;
};

struct AnalysisResult {
  std::vector<ReductionInfo> reductions;
  std::vector<ReductionChain> chains;  ///< fusable producer→consumer chains
  std::vector<std::string> notes;      ///< non-fatal diagnostics
};

/// Thrown when the nest is malformed or the discipline is violated.
class AnalysisError : public std::invalid_argument {
public:
  using std::invalid_argument::invalid_argument;
};

/// Validate the nest and resolve every reduction's span. Throws
/// AnalysisError on malformed nests or discipline violations.
[[nodiscard]] AnalysisResult analyze(const NestIR& nest,
                                     ClauseDiscipline discipline);

/// Populate `res.chains` from the analyzed reductions (run by analyze();
/// exposed for tests that build AnalysisResults by hand).
void detect_chains(AnalysisResult& res);

}  // namespace accred::acc
