// OpenACC reduction operators and their algebra. The paper's algorithms
// rely on every OpenACC operator being associative and commutative (§3);
// identity elements let private copies start neutral and fold the incoming
// host value in at the very end (§3.1.1's initial-value rule).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>

namespace accred::acc {

/// All reduction operators of the OpenACC 2.0 spec for C.
enum class ReductionOp : std::uint8_t {
  kSum,     ///< +
  kProd,    ///< *
  kMax,     ///< max
  kMin,     ///< min
  kBitAnd,  ///< &
  kBitOr,   ///< |
  kBitXor,  ///< ^
  kLogAnd,  ///< &&
  kLogOr,   ///< ||
};

[[nodiscard]] constexpr std::string_view to_string(ReductionOp op) {
  switch (op) {
    case ReductionOp::kSum: return "+";
    case ReductionOp::kProd: return "*";
    case ReductionOp::kMax: return "max";
    case ReductionOp::kMin: return "min";
    case ReductionOp::kBitAnd: return "&";
    case ReductionOp::kBitOr: return "|";
    case ReductionOp::kBitXor: return "^";
    case ReductionOp::kLogAnd: return "&&";
    case ReductionOp::kLogOr: return "||";
  }
  return "?";
}

/// Parse the clause spelling ("+", "*", "max", ...). Throws on junk.
[[nodiscard]] ReductionOp parse_reduction_op(std::string_view s);

/// Bitwise operators are only defined for integral operand types (C rules).
template <typename T>
[[nodiscard]] constexpr bool op_valid_for_type(ReductionOp op) {
  if constexpr (std::integral<T>) {
    return true;
  } else {
    switch (op) {
      case ReductionOp::kBitAnd:
      case ReductionOp::kBitOr:
      case ReductionOp::kBitXor:
        return false;
      default:
        return true;
    }
  }
}

/// A reduction operator bound at run time. One instantiation per operand
/// type keeps template bloat down (the simulator's per-element overhead
/// dwarfs the switch); compile-time functors exist below for hot paths.
template <typename T>
struct RuntimeOp {
  ReductionOp op = ReductionOp::kSum;

  [[nodiscard]] constexpr T identity() const {
    switch (op) {
      case ReductionOp::kSum: return T{0};
      case ReductionOp::kProd: return T{1};
      case ReductionOp::kMax: return std::numeric_limits<T>::lowest();
      case ReductionOp::kMin: return std::numeric_limits<T>::max();
      case ReductionOp::kBitAnd:
        if constexpr (std::integral<T>) return static_cast<T>(~T{0});
        break;
      case ReductionOp::kBitOr:
      case ReductionOp::kBitXor:
        if constexpr (std::integral<T>) return T{0};
        break;
      case ReductionOp::kLogAnd: return T{1};
      case ReductionOp::kLogOr: return T{0};
    }
    throw std::invalid_argument("operator invalid for operand type");
  }

  [[nodiscard]] constexpr T apply(T a, T b) const {
    switch (op) {
      case ReductionOp::kSum: return a + b;
      case ReductionOp::kProd: return a * b;
      case ReductionOp::kMax: return std::max(a, b);
      case ReductionOp::kMin: return std::min(a, b);
      case ReductionOp::kBitAnd:
        if constexpr (std::integral<T>) return a & b;
        break;
      case ReductionOp::kBitOr:
        if constexpr (std::integral<T>) return a | b;
        break;
      case ReductionOp::kBitXor:
        if constexpr (std::integral<T>) return a ^ b;
        break;
      case ReductionOp::kLogAnd: return static_cast<T>((a != T{0}) && (b != T{0}));
      case ReductionOp::kLogOr: return static_cast<T>((a != T{0}) || (b != T{0}));
    }
    throw std::invalid_argument("operator invalid for operand type");
  }
};

// Compile-time functors, for host reference folds and hot benchmark paths.
struct SumOp {
  template <typename T>
  constexpr T operator()(T a, T b) const { return a + b; }
  template <typename T>
  static constexpr T identity() { return T{0}; }
};
struct ProdOp {
  template <typename T>
  constexpr T operator()(T a, T b) const { return a * b; }
  template <typename T>
  static constexpr T identity() { return T{1}; }
};
struct MaxOp {
  template <typename T>
  constexpr T operator()(T a, T b) const { return std::max(a, b); }
  template <typename T>
  static constexpr T identity() { return std::numeric_limits<T>::lowest(); }
};
struct MinOp {
  template <typename T>
  constexpr T operator()(T a, T b) const { return std::min(a, b); }
  template <typename T>
  static constexpr T identity() { return std::numeric_limits<T>::max(); }
};

}  // namespace accred::acc
