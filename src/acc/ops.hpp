// OpenACC reduction operators and their algebra. The paper's algorithms
// rely on every OpenACC operator being associative and commutative (§3);
// identity elements let private copies start neutral and fold the incoming
// host value in at the very end (§3.1.1's initial-value rule).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>

namespace accred::acc {

/// All reduction operators of the OpenACC 2.0 spec for C.
enum class ReductionOp : std::uint8_t {
  kSum,     ///< +
  kProd,    ///< *
  kMax,     ///< max
  kMin,     ///< min
  kBitAnd,  ///< &
  kBitOr,   ///< |
  kBitXor,  ///< ^
  kLogAnd,  ///< &&
  kLogOr,   ///< ||
};

[[nodiscard]] constexpr std::string_view to_string(ReductionOp op) {
  switch (op) {
    case ReductionOp::kSum: return "+";
    case ReductionOp::kProd: return "*";
    case ReductionOp::kMax: return "max";
    case ReductionOp::kMin: return "min";
    case ReductionOp::kBitAnd: return "&";
    case ReductionOp::kBitOr: return "|";
    case ReductionOp::kBitXor: return "^";
    case ReductionOp::kLogAnd: return "&&";
    case ReductionOp::kLogOr: return "||";
  }
  return "?";
}

/// Parse the clause spelling ("+", "*", "max", ...). Throws on junk.
[[nodiscard]] ReductionOp parse_reduction_op(std::string_view s);

/// Bitwise operators are only defined for integral operand types (C rules).
template <typename T>
[[nodiscard]] constexpr bool op_valid_for_type(ReductionOp op) {
  if constexpr (std::integral<T>) {
    return true;
  } else {
    switch (op) {
      case ReductionOp::kBitAnd:
      case ReductionOp::kBitOr:
      case ReductionOp::kBitXor:
        return false;
      default:
        return true;
    }
  }
}

/// A reduction operator bound at run time. One instantiation per operand
/// type keeps template bloat down (the simulator's per-element overhead
/// dwarfs the switch); compile-time functors exist below for hot paths.
template <typename T>
struct RuntimeOp {
  ReductionOp op = ReductionOp::kSum;

  [[nodiscard]] constexpr T identity() const {
    switch (op) {
      case ReductionOp::kSum: return T{0};
      case ReductionOp::kProd: return T{1};
      case ReductionOp::kMax: return std::numeric_limits<T>::lowest();
      case ReductionOp::kMin: return std::numeric_limits<T>::max();
      case ReductionOp::kBitAnd:
        if constexpr (std::integral<T>) return static_cast<T>(~T{0});
        break;
      case ReductionOp::kBitOr:
      case ReductionOp::kBitXor:
        if constexpr (std::integral<T>) return T{0};
        break;
      case ReductionOp::kLogAnd: return T{1};
      case ReductionOp::kLogOr: return T{0};
    }
    throw std::invalid_argument("operator invalid for operand type");
  }

  [[nodiscard]] constexpr T apply(T a, T b) const {
    switch (op) {
      case ReductionOp::kSum: return a + b;
      case ReductionOp::kProd: return a * b;
      // min/max propagate NaN regardless of operand order: std::min/max
      // return the first operand on unordered comparisons, so a bare
      // std::max(a, b) silently drops a NaN in `b` — which fold order
      // (and therefore strategy choice) would otherwise make observable,
      // breaking the associativity assumption of §3.
      case ReductionOp::kMax:
        if constexpr (std::floating_point<T>) {
          if (b != b) return b;
          if (a != a) return a;
        }
        return std::max(a, b);
      case ReductionOp::kMin:
        if constexpr (std::floating_point<T>) {
          if (b != b) return b;
          if (a != a) return a;
        }
        return std::min(a, b);
      case ReductionOp::kBitAnd:
        if constexpr (std::integral<T>) return a & b;
        break;
      case ReductionOp::kBitOr:
        if constexpr (std::integral<T>) return a | b;
        break;
      case ReductionOp::kBitXor:
        if constexpr (std::integral<T>) return a ^ b;
        break;
      case ReductionOp::kLogAnd: return static_cast<T>((a != T{0}) && (b != T{0}));
      case ReductionOp::kLogOr: return static_cast<T>((a != T{0}) || (b != T{0}));
    }
    throw std::invalid_argument("operator invalid for operand type");
  }
};

// Compile-time functors, for host reference folds and hot benchmark paths.
struct SumOp {
  template <typename T>
  constexpr T operator()(T a, T b) const { return a + b; }
  template <typename T>
  static constexpr T identity() { return T{0}; }
};
struct ProdOp {
  template <typename T>
  constexpr T operator()(T a, T b) const { return a * b; }
  template <typename T>
  static constexpr T identity() { return T{1}; }
};
struct MaxOp {
  template <typename T>
  constexpr T operator()(T a, T b) const {
    if constexpr (std::floating_point<T>) {  // NaN-deterministic, as RuntimeOp
      if (b != b) return b;
      if (a != a) return a;
    }
    return std::max(a, b);
  }
  template <typename T>
  static constexpr T identity() { return std::numeric_limits<T>::lowest(); }
};
struct MinOp {
  template <typename T>
  constexpr T operator()(T a, T b) const {
    if constexpr (std::floating_point<T>) {  // NaN-deterministic, as RuntimeOp
      if (b != b) return b;
      if (a != a) return a;
    }
    return std::min(a, b);
  }
  template <typename T>
  static constexpr T identity() { return std::numeric_limits<T>::max(); }
};

// ---- Payload reductions (beyond the OpenACC scalar operators) ----------
//
// The generic-reduction extension: reductions whose element is not a bare
// scalar but a small trivially-copyable struct, folded with an associative
// + commutative op carrying the same `.identity()` / `.apply(a, b)` shape
// as RuntimeOp so the tree/staging/finalize machinery is reusable as-is.

/// Value + flat iteration index, the element of argmin/argmax reductions
/// (RAJA's ReduceMinLoc/MaxLoc). Ties break toward the smallest index so
/// every fold order returns the same pair.
template <typename T>
struct ValueIndex {
  T value{};
  std::int64_t index = -1;

  friend constexpr bool operator==(const ValueIndex&,
                                   const ValueIndex&) = default;
};

namespace detail {

/// Shared argmin/argmax combine. NaN wins unconditionally (mirroring the
/// NaN-propagating scalar min/max above); among several NaNs the smallest
/// index wins, which keeps the fold associative and commutative even when
/// multiple lanes contribute NaN.
template <typename T, bool kWantMin>
[[nodiscard]] constexpr ValueIndex<T> arg_combine(ValueIndex<T> a,
                                                  ValueIndex<T> b) {
  if constexpr (std::floating_point<T>) {
    const bool a_nan = a.value != a.value;
    const bool b_nan = b.value != b.value;
    if (a_nan || b_nan) {
      if (a_nan && b_nan) return a.index <= b.index ? a : b;
      return a_nan ? a : b;
    }
  }
  if constexpr (kWantMin) {
    if (a.value < b.value) return a;
    if (b.value < a.value) return b;
  } else {
    if (a.value > b.value) return a;
    if (b.value > a.value) return b;
  }
  return a.index <= b.index ? a : b;
}

}  // namespace detail

/// Argmin over (value, index) pairs. The identity's value is +inf for
/// floating operands (so an all-+inf input still yields a real index) and
/// the type's max otherwise; its index is the largest representable one,
/// so any real contribution — including an equal-value tie — beats it.
template <typename T>
struct ArgMinOp {
  [[nodiscard]] static constexpr ValueIndex<T> identity() {
    if constexpr (std::floating_point<T>) {
      return {std::numeric_limits<T>::infinity(),
              std::numeric_limits<std::int64_t>::max()};
    } else {
      return {std::numeric_limits<T>::max(),
              std::numeric_limits<std::int64_t>::max()};
    }
  }
  [[nodiscard]] constexpr ValueIndex<T> apply(ValueIndex<T> a,
                                              ValueIndex<T> b) const {
    return detail::arg_combine<T, true>(a, b);
  }
};

template <typename T>
struct ArgMaxOp {
  [[nodiscard]] static constexpr ValueIndex<T> identity() {
    if constexpr (std::floating_point<T>) {
      return {-std::numeric_limits<T>::infinity(),
              std::numeric_limits<std::int64_t>::max()};
    } else {
      return {std::numeric_limits<T>::lowest(),
              std::numeric_limits<std::int64_t>::max()};
    }
  }
  [[nodiscard]] constexpr ValueIndex<T> apply(ValueIndex<T> a,
                                              ValueIndex<T> b) const {
    return detail::arg_combine<T, false>(a, b);
  }
};

}  // namespace accred::acc
