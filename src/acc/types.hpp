// Runtime descriptions of the scalar operand types a reduction clause may
// carry, plus a visitor-style dispatcher from the runtime tag to templates.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>

namespace accred::acc {

enum class DataType : std::uint8_t {
  kInt32,
  kUInt32,
  kInt64,
  kFloat,
  kDouble,
};

[[nodiscard]] constexpr std::string_view to_string(DataType t) {
  switch (t) {
    case DataType::kInt32: return "int";
    case DataType::kUInt32: return "unsigned";
    case DataType::kInt64: return "long long";
    case DataType::kFloat: return "float";
    case DataType::kDouble: return "double";
  }
  return "?";
}

[[nodiscard]] constexpr std::size_t size_of(DataType t) {
  switch (t) {
    case DataType::kInt32:
    case DataType::kUInt32:
    case DataType::kFloat:
      return 4;
    case DataType::kInt64:
    case DataType::kDouble:
      return 8;
  }
  return 0;
}

[[nodiscard]] constexpr bool is_integral(DataType t) {
  switch (t) {
    case DataType::kInt32:
    case DataType::kUInt32:
    case DataType::kInt64:
      return true;
    case DataType::kFloat:
    case DataType::kDouble:
      return false;
  }
  return false;
}

template <typename T>
struct TypeTag {
  using type = T;
};

/// Invoke `f(TypeTag<T>{})` for the C++ type matching the runtime tag.
template <typename F>
decltype(auto) dispatch_type(DataType t, F&& f) {
  switch (t) {
    case DataType::kInt32: return f(TypeTag<std::int32_t>{});
    case DataType::kUInt32: return f(TypeTag<std::uint32_t>{});
    case DataType::kInt64: return f(TypeTag<std::int64_t>{});
    case DataType::kFloat: return f(TypeTag<float>{});
    case DataType::kDouble: return f(TypeTag<double>{});
  }
  throw std::invalid_argument("unknown DataType");
}

template <typename T>
[[nodiscard]] constexpr DataType data_type_of() {
  if constexpr (std::is_same_v<T, std::int32_t>) return DataType::kInt32;
  else if constexpr (std::is_same_v<T, std::uint32_t>) return DataType::kUInt32;
  else if constexpr (std::is_same_v<T, std::int64_t>) return DataType::kInt64;
  else if constexpr (std::is_same_v<T, float>) return DataType::kFloat;
  else if constexpr (std::is_same_v<T, double>) return DataType::kDouble;
  else static_assert(!sizeof(T), "unsupported reduction operand type");
}

}  // namespace accred::acc
