// Automatic parallelism binding for the `kernels` construct (§2.1: "the
// parallel construct provides more control to the user while the kernels
// provides more control to the compiler"). Loops that carry no explicit
// gang/worker/vector binding get one assigned outermost-first, skipping
// levels already claimed by annotated loops.
#pragma once

#include <span>

#include "acc/ir.hpp"

namespace accred::acc {

/// Assign bindings to unannotated (par == 0, non-seq) loops. `seq_loops`
/// lists loop indices the user forced sequential (from `loop seq`
/// directives); they are left untouched. Returns the number of loops that
/// received a binding.
inline int auto_bind_kernels(NestIR& nest,
                             std::span<const int> seq_loops = {}) {
  auto is_seq = [&](int l) {
    for (int s : seq_loops) {
      if (s == l) return true;
    }
    return false;
  };
  ParMask used = 0;
  for (const LoopSpec& loop : nest.loops) used |= loop.par;

  // Available levels, outermost-first (the paper's canonical mapping).
  const Par order[] = {Par::kGang, Par::kWorker, Par::kVector};
  std::size_t next = 0;
  int bound = 0;
  for (std::size_t l = 0; l < nest.loops.size(); ++l) {
    LoopSpec& loop = nest.loops[l];
    if (loop.par != 0 || is_seq(static_cast<int>(l))) continue;
    while (next < std::size(order) && has(used, order[next])) ++next;
    if (next >= std::size(order)) break;  // no levels left: stays sequential
    loop.par = mask_of(order[next]);
    used |= loop.par;
    ++bound;
  }
  return bound;
}

}  // namespace accred::acc
