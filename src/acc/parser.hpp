// Front end for OpenACC directive text. Parses the clause syntax the paper
// uses — loop constructs with gang/worker/vector/seq bindings, reduction
// clauses, collapse, and the compute-construct tuning/data clauses — into
// the IR structures of ir.hpp.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "acc/ir.hpp"

namespace accred::acc {

/// Parsed `#pragma acc loop ...`.
struct LoopDirective {
  ParMask par = 0;
  bool seq = false;
  int collapse = 1;
  std::vector<ReductionClause> reductions;
  /// Size arguments of the gang(n) / worker(n) / vector(n) forms, when
  /// given; they override the compute construct's num_gangs /
  /// num_workers / vector_length.
  std::optional<std::uint32_t> gang_size;
  std::optional<std::uint32_t> worker_size;
  std::optional<std::uint32_t> vector_size;
};

/// Data-movement clause kinds on a compute construct (parsed for fidelity;
/// data movement in this library is explicit through DeviceBuffer).
enum class DataClauseKind : std::uint8_t {
  kCopy,
  kCopyIn,
  kCopyOut,
  kCreate,
};

struct DataClause {
  DataClauseKind kind = DataClauseKind::kCopy;
  std::vector<std::string> vars;
};

/// Parsed `#pragma acc parallel ...` / `#pragma acc kernels ...`.
struct ParallelDirective {
  bool is_kernels = false;  ///< kernels construct instead of parallel
  std::optional<std::uint32_t> num_gangs;
  std::optional<std::uint32_t> num_workers;
  std::optional<std::uint32_t> vector_length;
  std::vector<DataClause> data;
  std::vector<ReductionClause> reductions;
};

/// Parse a loop directive. Accepts with or without the "#pragma acc"
/// prefix. Throws std::invalid_argument with a position-bearing message on
/// malformed input.
[[nodiscard]] LoopDirective parse_loop_directive(std::string_view text);

/// Parse a parallel/kernels compute-construct directive.
[[nodiscard]] ParallelDirective parse_parallel_directive(std::string_view text);

}  // namespace accred::acc
