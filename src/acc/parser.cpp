#include "acc/parser.hpp"

#include "acc/openmp.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace accred::acc {

ReductionOp parse_reduction_op(std::string_view s) {
  if (s == "+") return ReductionOp::kSum;
  if (s == "*") return ReductionOp::kProd;
  if (s == "max") return ReductionOp::kMax;
  if (s == "min") return ReductionOp::kMin;
  if (s == "&") return ReductionOp::kBitAnd;
  if (s == "|") return ReductionOp::kBitOr;
  if (s == "^") return ReductionOp::kBitXor;
  if (s == "&&") return ReductionOp::kLogAnd;
  if (s == "||") return ReductionOp::kLogOr;
  throw std::invalid_argument("unknown reduction operator '" + std::string(s) +
                              "'");
}

std::string par_mask_to_string(ParMask m) {
  std::string out;
  auto append = [&](std::string_view s) {
    if (!out.empty()) out += ' ';
    out += s;
  };
  if (has(m, Par::kGang)) append("gang");
  if (has(m, Par::kWorker)) append("worker");
  if (has(m, Par::kVector)) append("vector");
  if (out.empty()) out = "seq";
  return out;
}

namespace {

/// Minimal recursive-descent scanner over directive text.
class Scanner {
public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  /// Identifier or keyword: [A-Za-z_][A-Za-z0-9_]*
  [[nodiscard]] std::string ident() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Operator token inside reduction(...): symbols or max/min keywords.
  [[nodiscard]] std::string op_token() {
    skip_ws();
    if (pos_ >= text_.size()) fail("expected reduction operator");
    const char c = text_[pos_];
    if (c == '+' || c == '*' || c == '^') {
      ++pos_;
      return std::string(1, c);
    }
    if (c == '&' || c == '|') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == c) {
        ++pos_;
        return std::string(2, c);
      }
      return std::string(1, c);
    }
    return ident();  // max / min
  }

  [[nodiscard]] std::uint32_t number() {
    skip_ws();
    std::uint32_t v = 0;
    const auto* begin = text_.data() + pos_;
    const auto* end = text_.data() + text_.size();
    auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || ptr == begin) fail("expected integer");
    pos_ += static_cast<std::size_t>(ptr - begin);
    return v;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("directive parse error at offset " +
                                std::to_string(pos_) + ": " + why +
                                " in \"" + std::string(text_) + "\"");
  }

private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Strip an optional "#pragma acc" prefix and return the construct keyword.
std::string leading_keyword(Scanner& sc) {
  std::string kw = sc.ident();
  if (kw == "pragma") kw = sc.ident();  // caller stripped '#'
  if (kw == "acc") kw = sc.ident();
  return kw;
}

std::vector<ReductionClause> parse_reduction_clause(Scanner& sc) {
  sc.expect('(');
  const std::string op_text = sc.op_token();
  const ReductionOp op = parse_reduction_op(op_text);
  std::vector<ReductionClause> out;
  sc.expect(':');
  do {
    ReductionClause clause{op, sc.ident(), 0};
    // Array-reduction extension: var[0:len].
    if (sc.consume('[')) {
      const std::uint32_t lo = sc.number();
      if (lo != 0) sc.fail("array reduction sections must start at 0");
      sc.expect(':');
      clause.array_len = sc.number();
      if (clause.array_len <= 0) sc.fail("array reduction length must be > 0");
      sc.expect(']');
    }
    out.push_back(std::move(clause));
  } while (sc.consume(','));
  sc.expect(')');
  return out;
}

std::vector<std::string> parse_var_list(Scanner& sc) {
  sc.expect('(');
  std::vector<std::string> vars;
  do {
    std::string v = sc.ident();
    // Array-section syntax input[0:n] — record the base name only.
    if (sc.consume('[')) {
      while (!sc.consume(']')) {
        if (sc.at_end()) sc.fail("unterminated array section");
        (void)sc.consume(':');
        if (!sc.peek_is(']')) (void)sc.ident();
      }
    }
    vars.push_back(std::move(v));
  } while (sc.consume(','));
  sc.expect(')');
  return vars;
}

}  // namespace

LoopDirective parse_loop_directive(std::string_view text) {
  Scanner sc(text);
  (void)sc.consume('#');
  const std::string kw = leading_keyword(sc);
  if (kw != "loop") {
    sc.fail("expected 'loop' construct, got '" + kw + "'");
  }
  LoopDirective d;
  // Optional size argument of the gang(n)/worker(n)/vector(n) forms.
  auto maybe_size = [&](std::optional<std::uint32_t>& out) {
    if (!sc.consume('(')) return;
    out = sc.number();
    if (*out == 0) sc.fail("level size must be positive");
    sc.expect(')');
  };
  while (!sc.at_end()) {
    const std::string clause = sc.ident();
    if (clause == "gang") {
      d.par |= mask_of(Par::kGang);
      maybe_size(d.gang_size);
    } else if (clause == "worker") {
      d.par |= mask_of(Par::kWorker);
      maybe_size(d.worker_size);
    } else if (clause == "vector") {
      d.par |= mask_of(Par::kVector);
      maybe_size(d.vector_size);
    } else if (clause == "seq") {
      d.seq = true;
    } else if (clause == "independent") {
      // accepted, no semantic effect here
    } else if (clause == "collapse") {
      sc.expect('(');
      d.collapse = static_cast<int>(sc.number());
      sc.expect(')');
      if (d.collapse < 1) sc.fail("collapse factor must be >= 1");
    } else if (clause == "reduction") {
      auto rs = parse_reduction_clause(sc);
      d.reductions.insert(d.reductions.end(), rs.begin(), rs.end());
    } else {
      sc.fail("unknown loop clause '" + clause + "'");
    }
  }
  if (d.seq && d.par != 0) {
    throw std::invalid_argument(
        "loop directive cannot combine 'seq' with parallelism bindings");
  }
  return d;
}

ParallelDirective parse_parallel_directive(std::string_view text) {
  Scanner sc(text);
  (void)sc.consume('#');
  const std::string kw = leading_keyword(sc);
  ParallelDirective d;
  if (kw == "kernels") {
    d.is_kernels = true;
  } else if (kw != "parallel") {
    sc.fail("expected 'parallel' or 'kernels' construct, got '" + kw + "'");
  }
  while (!sc.at_end()) {
    const std::string clause = sc.ident();
    if (clause == "num_gangs") {
      sc.expect('(');
      d.num_gangs = sc.number();
      sc.expect(')');
    } else if (clause == "num_workers") {
      sc.expect('(');
      d.num_workers = sc.number();
      sc.expect(')');
    } else if (clause == "vector_length") {
      sc.expect('(');
      d.vector_length = sc.number();
      sc.expect(')');
    } else if (clause == "copy") {
      d.data.push_back({DataClauseKind::kCopy, parse_var_list(sc)});
    } else if (clause == "copyin") {
      d.data.push_back({DataClauseKind::kCopyIn, parse_var_list(sc)});
    } else if (clause == "copyout") {
      d.data.push_back({DataClauseKind::kCopyOut, parse_var_list(sc)});
    } else if (clause == "create") {
      d.data.push_back({DataClauseKind::kCreate, parse_var_list(sc)});
    } else if (clause == "reduction") {
      auto rs = parse_reduction_clause(sc);
      d.reductions.insert(d.reductions.end(), rs.begin(), rs.end());
    } else if (clause == "async" || clause == "wait") {
      if (sc.consume('(')) {
        (void)sc.number();
        sc.expect(')');
      }
    } else {
      sc.fail("unknown compute-construct clause '" + clause + "'");
    }
  }
  return d;
}

OmpDirective parse_omp_directive(std::string_view text) {
  Scanner sc(text);
  (void)sc.consume('#');
  std::string kw = sc.ident();
  if (kw == "pragma") kw = sc.ident();
  if (kw != "omp") {
    sc.fail("expected an 'omp' directive, got '" + kw + "'");
  }
  OmpDirective d;
  bool saw_parallel = false;
  while (!sc.at_end()) {
    const std::string tok = sc.ident();
    if (tok == "target" || tok == "distribute" || tok == "loop") {
      // structural keywords with no mapping consequence here
    } else if (tok == "teams") {
      d.teams = true;
    } else if (tok == "parallel") {
      saw_parallel = true;
    } else if (tok == "for") {
      if (saw_parallel) d.parallel_for = true;
    } else if (tok == "simd") {
      d.simd = true;
    } else if (tok == "num_teams") {
      sc.expect('(');
      d.num_teams = sc.number();
      sc.expect(')');
    } else if (tok == "num_threads" || tok == "thread_limit" ||
               tok == "simdlen") {
      sc.expect('(');
      d.num_threads = sc.number();
      sc.expect(')');
    } else if (tok == "reduction") {
      auto rs = parse_reduction_clause(sc);
      d.reductions.insert(d.reductions.end(), rs.begin(), rs.end());
    } else if (tok == "map" || tok == "private" || tok == "firstprivate" ||
               tok == "shared" || tok == "schedule") {
      // accepted and ignored: consume the parenthesized list
      if (sc.consume('(')) {
        int depth = 1;
        while (depth > 0) {
          if (sc.at_end()) sc.fail("unterminated clause list");
          if (sc.consume('(')) {
            ++depth;
          } else if (sc.consume(')')) {
            --depth;
          } else if (!sc.consume(',') && !sc.consume(':') &&
                     !sc.consume('[') && !sc.consume(']')) {
            (void)sc.ident();
          }
        }
      }
    } else {
      sc.fail("unknown OpenMP clause '" + tok + "'");
    }
  }
  return d;
}

ParMask span_between(const NestIR& nest, int use_level, int accum_level) {
  ParMask m = 0;
  for (int l = use_level + 1; l <= accum_level; ++l) {
    if (l >= 0 && l < static_cast<int>(nest.loops.size())) {
      m |= nest.loops[static_cast<std::size_t>(l)].par;
    }
  }
  return m;
}

}  // namespace accred::acc
