#include "acc/analysis.hpp"

#include <algorithm>
#include <bit>

namespace accred::acc {

namespace {

[[noreturn]] void fail(const std::string& why) { throw AnalysisError(why); }

int level_of_first(const NestIR& nest, Par p) {
  for (std::size_t l = 0; l < nest.loops.size(); ++l) {
    if (has(nest.loops[l].par, p)) return static_cast<int>(l);
  }
  return -1;
}

void validate_structure(const NestIR& nest) {
  if (nest.loops.empty() || nest.loops.size() > 3) {
    fail("nest must have 1..3 loops (use collapse for deeper nests); got " +
         std::to_string(nest.loops.size()));
  }
  for (std::size_t l = 0; l < nest.loops.size(); ++l) {
    if (nest.loops[l].extent <= 0) {
      fail("loop " + std::to_string(l) + " has non-positive extent");
    }
  }
  // Each binding may appear on at most one loop.
  for (Par p : {Par::kGang, Par::kWorker, Par::kVector}) {
    int count = 0;
    for (const LoopSpec& loop : nest.loops) count += has(loop.par, p) ? 1 : 0;
    if (count > 1) {
      fail(std::string("parallelism level '") +
           par_mask_to_string(mask_of(p)) + "' bound to multiple loops");
    }
  }
  // Outer-to-inner ordering: gang loops must not be inside worker loops,
  // worker not inside vector (OpenACC nesting rules).
  const int gl = level_of_first(nest, Par::kGang);
  const int wl = level_of_first(nest, Par::kWorker);
  const int vl = level_of_first(nest, Par::kVector);
  if (gl >= 0 && wl >= 0 && gl > wl) fail("gang loop nested inside worker loop");
  if (gl >= 0 && vl >= 0 && gl > vl) fail("gang loop nested inside vector loop");
  if (wl >= 0 && vl >= 0 && wl > vl) fail("worker loop nested inside vector loop");
  if (nest.config.num_gangs == 0 || nest.config.num_workers == 0 ||
      nest.config.vector_length == 0) {
    fail("launch configuration dimensions must be positive");
  }
}

const VarInfo* find_var(const NestIR& nest, const std::string& name) {
  const auto it =
      std::find_if(nest.vars.begin(), nest.vars.end(),
                   [&](const VarInfo& v) { return v.name == name; });
  return it == nest.vars.end() ? nullptr : &*it;
}

bool type_supports(DataType t, ReductionOp op) {
  switch (op) {
    case ReductionOp::kBitAnd:
    case ReductionOp::kBitOr:
    case ReductionOp::kBitXor:
      return is_integral(t);
    default:
      return true;
  }
}

}  // namespace

AnalysisResult analyze(const NestIR& nest, ClauseDiscipline discipline) {
  validate_structure(nest);
  AnalysisResult out;

  // Gather clause positions per variable.
  struct ClauseSites {
    ReductionOp op;
    std::vector<int> levels;
  };
  std::vector<std::pair<std::string, ClauseSites>> by_var;
  for (std::size_t l = 0; l < nest.loops.size(); ++l) {
    for (const ReductionClause& c : nest.loops[l].reductions) {
      auto it = std::find_if(by_var.begin(), by_var.end(),
                             [&](const auto& p) { return p.first == c.var; });
      if (it == by_var.end()) {
        by_var.push_back({c.var, {c.op, {static_cast<int>(l)}}});
      } else {
        if (it->second.op != c.op) {
          fail("variable '" + c.var +
               "' appears in reduction clauses with different operators");
        }
        it->second.levels.push_back(static_cast<int>(l));
      }
    }
  }

  for (auto& [name, sites] : by_var) {
    const VarInfo* var = find_var(nest, name);
    if (var == nullptr) {
      fail("reduction clause names undeclared variable '" + name + "'");
    }
    if (!type_supports(var->type, sites.op)) {
      fail("operator '" + std::string(to_string(sites.op)) +
           "' is invalid for operand type '" +
           std::string(to_string(var->type)) + "' (variable '" + name + "')");
    }
    const int nlevels = static_cast<int>(nest.loops.size());
    if (var->accum_level < 0 || var->accum_level >= nlevels) {
      fail("variable '" + name + "' accumulates at nonexistent level");
    }
    if (var->use_level < VarInfo::kHostUse || var->use_level >= nlevels) {
      fail("variable '" + name + "' used at nonexistent level");
    }
    if (var->use_level >= var->accum_level) {
      // The consolidated value can only be read outside the loop(s) that
      // accumulate it; a use at or inside the accumulation loop leaves no
      // parallel region to reduce across.
      fail("variable '" + name +
           "' is next used at or inside its accumulation loop; the "
           "reduction spans no parallel region");
    }

    ReductionInfo info;
    info.var = *var;
    info.op = sites.op;
    info.clause_level = *std::min_element(sites.levels.begin(),
                                          sites.levels.end());
    info.span = span_between(nest, var->use_level, var->accum_level);
    if (info.span == 0) {
      fail("reduction on '" + name +
           "' spans no parallel loop (all levels sequential): nothing to "
           "parallelize");
    }
    const LoopSpec& accum_loop =
        nest.loops[static_cast<std::size_t>(var->accum_level)];
    info.same_loop =
        std::popcount(static_cast<unsigned>(accum_loop.par)) > 1 &&
        info.span == accum_loop.par;

    // Clause placement checks.
    for (int l : sites.levels) {
      if (l <= var->use_level || l > var->accum_level) {
        fail("reduction clause for '" + name + "' on loop " +
             std::to_string(l) + " lies outside the variable's span");
      }
    }
    if (discipline == ClauseDiscipline::kExplicitAllLevels) {
      for (int l = var->use_level + 1; l <= var->accum_level; ++l) {
        const LoopSpec& loop = nest.loops[static_cast<std::size_t>(l)];
        if (loop.par == 0) continue;  // sequential loops need no clause
        if (std::find(sites.levels.begin(), sites.levels.end(), l) ==
            sites.levels.end()) {
          fail("this compiler requires the reduction clause on every "
               "parallel loop of the span; '" +
               name + "' is missing one on loop " + std::to_string(l) +
               " (" + par_mask_to_string(loop.par) + ")");
        }
      }
    } else if (sites.levels.size() == 1 &&
               sites.levels[0] != var->use_level + 1) {
      out.notes.push_back(
          "note: clause for '" + name +
          "' is not on the loop closest to its next use; span detected "
          "automatically");
    }

    if (has(info.span, Par::kGang) && has(info.span, Par::kVector) &&
        !has(info.span, Par::kWorker) && !info.same_loop) {
      out.notes.push_back(
          "note: '" + name +
          "' spans gang & vector without a worker loop; treated as a "
          "gang-worker-vector span with a single worker (§3.2.1)");
    }
    out.reductions.push_back(std::move(info));
  }

  if (out.reductions.empty() && !nest.vars.empty()) {
    fail("nest declares reduction variables but no loop carries a "
         "reduction clause");
  }
  detect_chains(out);
  return out;
}

namespace {

/// 0 = vector (innermost), 1 = worker, 2 = gang. Only meaningful for
/// single-level spans.
int outwardness(ParMask span) {
  if (has(span, Par::kVector)) return 0;
  if (has(span, Par::kWorker)) return 1;
  return 2;
}

bool is_chain_stage(const ReductionInfo& r) {
  return !r.same_loop && std::popcount(static_cast<unsigned>(r.span)) == 1;
}

}  // namespace

void detect_chains(AnalysisResult& res) {
  const auto n = static_cast<int>(res.reductions.size());
  if (n < 2) return;

  // Link producer -> consumer: the producer's consolidated value is next
  // read in the loop whose body accumulates the consumer, both stages span
  // exactly one parallelism level, and the levels are adjacent in the
  // vector < worker < gang hierarchy (the shapes the fused kernel covers).
  std::vector<int> consumer_of(static_cast<std::size_t>(n), -1);
  std::vector<int> producers_into(static_cast<std::size_t>(n), 0);
  for (int pi = 0; pi < n; ++pi) {
    const ReductionInfo& p = res.reductions[static_cast<std::size_t>(pi)];
    if (!is_chain_stage(p) || p.var.use_level < 0) continue;
    int found = -1;
    for (int ci = 0; ci < n; ++ci) {
      if (ci == pi) continue;
      const ReductionInfo& c = res.reductions[static_cast<std::size_t>(ci)];
      if (!is_chain_stage(c) || c.var.accum_level != p.var.use_level) continue;
      if (c.var.type != p.var.type) continue;
      if (outwardness(c.span) != outwardness(p.span) + 1) continue;
      if (found >= 0) {  // two consumers at one level: ambiguous, skip
        found = -2;
        break;
      }
      found = ci;
    }
    if (found >= 0) {
      consumer_of[static_cast<std::size_t>(pi)] = found;
      ++producers_into[static_cast<std::size_t>(found)];
    }
  }
  // A consumer fed by several producers has no single-chain lowering.
  for (int pi = 0; pi < n; ++pi) {
    const int ci = consumer_of[static_cast<std::size_t>(pi)];
    if (ci >= 0 && producers_into[static_cast<std::size_t>(ci)] > 1) {
      consumer_of[static_cast<std::size_t>(pi)] = -1;
    }
  }

  for (int pi = 0; pi < n; ++pi) {
    if (consumer_of[static_cast<std::size_t>(pi)] < 0) continue;
    // Chains start at a producer nothing else feeds.
    bool fed = false;
    for (int qi = 0; qi < n; ++qi) {
      fed = fed || consumer_of[static_cast<std::size_t>(qi)] == pi;
    }
    if (fed) continue;
    ReductionChain chain;
    for (int cur = pi; cur >= 0;
         cur = consumer_of[static_cast<std::size_t>(cur)]) {
      chain.stages.push_back(cur);
    }
    std::string note = "note: fusable reduction chain";
    for (const int s : chain.stages) {
      note += ' ';
      note += res.reductions[static_cast<std::size_t>(s)].var.name;
    }
    res.notes.push_back(std::move(note));
    res.chains.push_back(std::move(chain));
  }
}

}  // namespace accred::acc
