// Strategy planner: maps an analyzed reduction onto one of the kernel
// schemes of §3.1 / §3.2 and computes the launch geometry and buffer
// requirements. This is the codegen-decision stage of the OpenUH pipeline;
// the executor (executor.hpp) and the CUDA source emitter (codegen/) both
// consume its output.
#pragma once

#include <cstddef>
#include <string>

#include "acc/analysis.hpp"
#include "acc/profiles.hpp"
#include "reduce/strategy.hpp"

namespace accred::acc {

/// Which kernel scheme implements the reduction.
enum class StrategyKind : std::uint8_t {
  kVector,            ///< §3.1.1, Fig. 5a
  kWorker,            ///< §3.1.2, Fig. 5b
  kGang,              ///< §3.1.3, Fig. 5c + finalize kernel
  kWorkerVector,      ///< §3.2.1 flattened shared buffer
  kGangWorker,        ///< §3.2.1 global buffer + finalize kernel
  kGangWorkerVector,  ///< §3.2.1 global buffer + finalize kernel
  kSameLoop,          ///< §3.2.2, Fig. 10
  kFusedCascade,      ///< §3.2 producer→consumer chain fused to one kernel
};

[[nodiscard]] std::string_view to_string(StrategyKind k);

/// One stage of a fused cascade plan, innermost first ([vector, worker,
/// gang] for Fig. 4). Each stage folds the consolidated results of the
/// previous one with its own operator.
struct FusedStage {
  ReductionOp op = ReductionOp::kSum;
  Par level = Par::kVector;
  std::string var;

  friend bool operator==(const FusedStage&, const FusedStage&) = default;
};

/// A fully planned reduction, ready to execute or to emit CUDA for.
struct ExecutionPlan {
  StrategyKind kind = StrategyKind::kVector;
  ReductionOp op = ReductionOp::kSum;
  DataType type = DataType::kInt32;
  std::string var;

  reduce::Nest3 dims;               ///< extents mapped to (gang, worker, vector)
  std::int64_t same_loop_extent = 0;
  LaunchConfig launch;              ///< possibly narrowed (absent levels -> 1)
  reduce::StrategyConfig strategy;  ///< profile strategy choices

  /// Derived resource facts (for reports, tests and the CUDA emitter).
  std::size_t shared_bytes = 0;      ///< staging slab in the main kernel
  std::size_t global_buffer_elems = 0;  ///< partials buffer, 0 if none
  int kernel_count = 1;

  /// Stages of a kFusedCascade plan, innermost first; empty otherwise.
  /// `op` / `var` above mirror the outermost stage for reporting.
  std::vector<FusedStage> chain;
};

/// Plan one analyzed reduction. Throws AnalysisError if the span cannot be
/// implemented (never happens for spans produced by analyze()).
[[nodiscard]] ExecutionPlan plan_reduction(const NestIR& nest,
                                           const ReductionInfo& red,
                                           const CompilerProfile& prof);

/// Strategy adjustments a profile applies once the kind is known (e.g. the
/// modeled PGI loses coalescing on the flattened RMP kinds — see the
/// Table 2 discussion in profiles.cpp / EXPERIMENTS.md).
void apply_strategy_quirks(CompilerId id, StrategyKind kind,
                           reduce::StrategyConfig& sc);

/// Convenience: analyze + plan the nest's single reduction.
[[nodiscard]] ExecutionPlan plan_single(const NestIR& nest,
                                        const CompilerProfile& prof);

/// Lower a detected producer→consumer chain (analysis.hpp) to ONE fused
/// plan: a single kernel runs every stage's trees over one shared-memory
/// slab (the widest stage's requirement, reused level to level), plus the
/// usual partials buffer + finalize kernel when the outermost stage is a
/// gang reduction — versus one launch (and one global round-trip) per
/// stage unfused. Throws AnalysisError if the chain is not lowerable.
[[nodiscard]] ExecutionPlan plan_chain(const NestIR& nest,
                                       const AnalysisResult& analysis,
                                       const ReductionChain& chain,
                                       const CompilerProfile& prof);

/// Convenience: analyze + fuse the nest's single chain, which must cover
/// every reduction of the nest (the Fig. 4 shape).
[[nodiscard]] ExecutionPlan plan_chained(const NestIR& nest,
                                         const CompilerProfile& prof);

}  // namespace accred::acc
