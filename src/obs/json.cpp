#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace accred::obs {

namespace {

[[noreturn]] void kind_error(const char* want, Json::Kind got) {
  throw std::runtime_error(std::string("json: expected ") + want +
                           ", value holds kind " +
                           std::to_string(static_cast<int>(got)));
}

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

std::int64_t Json::as_int() const {
  if (kind_ == Kind::kInt) return int_;
  kind_error("integer", kind_);
}

double Json::as_double() const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  kind_error("number", kind_);
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return string_;
}

Json& Json::push(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  array_.push_back(std::move(v));
  return *this;
}

const std::vector<Json>& Json::elements() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return array_;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  kind_error("array or object", kind_);
}

Json& Json::set(std::string key, Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (!v) throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_;
}

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) {
    // int 3 and double 3.0 compare equal — diffing cares about values.
    if (a.is_number() && b.is_number()) return a.as_double() == b.as_double();
    return false;
  }
  switch (a.kind_) {
    case Json::Kind::kNull: return true;
    case Json::Kind::kBool: return a.bool_ == b.bool_;
    case Json::Kind::kInt: return a.int_ == b.int_;
    case Json::Kind::kDouble: return a.double_ == b.double_;
    case Json::Kind::kString: return a.string_ == b.string_;
    case Json::Kind::kArray: return a.array_ == b.array_;
    case Json::Kind::kObject: return a.object_ == b.object_;
  }
  return false;
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << static_cast<char>(c);
        }
    }
  }
  os << '"';
}

void write_json_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  // Shortest form that round-trips: try increasing precision until strtod
  // of the text recovers the exact bits.
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  os << buf;
  // Keep the number recognizably floating-point only when it already is;
  // "42" is a valid JSON double, so nothing more to do.
}

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    os << '\n' << std::string(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kInt: os << int_; break;
    case Kind::kDouble: write_json_double(os, double_); break;
    case Kind::kString: write_json_string(os, string_); break;
    case Kind::kArray: {
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) os << ',';
        newline(depth + 1);
        array_[i].dump_impl(os, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) os << ',';
        newline(depth + 1);
        write_json_string(os, object_[i].first);
        os << (indent > 0 ? ": " : ":");
        object_[i].second.dump_impl(os, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      os << '}';
      break;
    }
  }
}

void Json::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_ws();
    Json out;
    switch (peek()) {
      case '{': out = object(); break;
      case '[': out = array(); break;
      case '"': out = Json(string()); break;
      case 't':
        if (!consume("true")) fail("bad literal");
        out = Json(true);
        break;
      case 'f':
        if (!consume("false")) fail("bad literal");
        out = Json(false);
        break;
      case 'n':
        if (!consume("null")) fail("bad literal");
        break;
      default: out = number();
    }
    --depth_;
    return out;
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode as UTF-8 (surrogate pairs are passed through as two
          // 3-byte sequences — the record schema is ASCII in practice).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    // JSON forbids leading zeros ("01"); "0", "0.5", "0e1" stay legal.
    const std::string_view digits = tok[0] == '-' ? tok.substr(1) : tok;
    if (digits.size() > 1 && digits[0] == '0' &&
        std::isdigit(static_cast<unsigned char>(digits[1]))) {
      fail("leading zero in number");
    }
    // Integers that fit int64 stay integral; everything else is a double.
    if (tok.find_first_of(".eE") == std::string_view::npos) {
      std::int64_t i = 0;
      const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(i);
    }
    double d = 0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) fail("bad number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace accred::obs
