#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace accred::obs {

namespace {

struct Event {
  char ph;  // 'B', 'E', 'X', 'C'
  std::string name;
  std::uint32_t tid;
  double ts_us;
  double dur_us;  // X only
  std::vector<std::pair<std::string, double>> args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

struct TraceState {
  std::mutex mu;
  std::string path;
  std::vector<Event> events;
  std::map<std::uint32_t, std::string> thread_names;
  bool atexit_registered = false;
  bool flushed_once = false;
};

std::atomic<bool> g_enabled{false};

TraceState& state() {
  static TraceState s;
  return s;
}

std::chrono::steady_clock::time_point process_start() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

void flush_at_exit() {
  // Safety net for processes that never call Session::finish(). When a
  // flush already wrote the file and nothing arrived since, skip —
  // re-flushing here would overwrite the real trace with an empty one.
  if (!trace_enabled()) return;
  TraceState& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.flushed_once && s.events.empty()) return;
  }
  trace_flush();
}

void push_event(Event ev) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.path.empty()) return;  // disarmed between the check and the lock
  s.events.push_back(std::move(ev));
}

}  // namespace

bool trace_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void trace_configure(std::string path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.path = std::move(path);
  if (s.path.empty()) {
    s.events.clear();
  } else if (!s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit(flush_at_exit);
  }
  (void)process_start();  // pin the timebase before the first event
  g_enabled.store(!s.path.empty(), std::memory_order_relaxed);
}

void trace_configure_from_env() {
  if (trace_enabled()) return;
  if (const char* env = std::getenv("ACCRED_TRACE"); env && *env) {
    trace_configure(env);
  }
}

std::string trace_path() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.path;
}

double trace_now_us() {
  const auto dt = std::chrono::steady_clock::now() - process_start();
  return std::chrono::duration<double, std::micro>(dt).count();
}

void trace_begin(const char* name, std::uint32_t tid,
                 std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  Event ev{'B', name, tid, trace_now_us(), 0, {}, {}};
  for (const TraceArg& a : args) ev.args.emplace_back(a.key, a.value);
  push_event(std::move(ev));
}

void trace_end(std::uint32_t tid) {
  if (!trace_enabled()) return;
  push_event(Event{'E', "", tid, trace_now_us(), 0, {}, {}});
}

void trace_complete(const char* name, std::uint32_t tid, double ts_us,
                    double dur_us, std::initializer_list<TraceArg> args) {
  trace_complete(name, tid, ts_us, dur_us, args, {});
}

void trace_complete(const char* name, std::uint32_t tid, double ts_us,
                    double dur_us, std::initializer_list<TraceArg> args,
                    std::initializer_list<TraceStrArg> str_args) {
  if (!trace_enabled()) return;
  Event ev{'X', name, tid, ts_us, dur_us, {}, {}};
  for (const TraceArg& a : args) ev.args.emplace_back(a.key, a.value);
  for (const TraceStrArg& a : str_args) {
    ev.str_args.emplace_back(a.key, a.value);
  }
  push_event(std::move(ev));
}

void trace_set_thread_name(std::uint32_t tid, std::string name) {
  if (!trace_enabled()) return;
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.path.empty()) return;
  s.thread_names[tid] = std::move(name);
}

void trace_counter(const char* name, double value) {
  if (!trace_enabled()) return;
  Event ev{'C', name, 0, trace_now_us(), 0, {}, {}};
  ev.args.emplace_back("value", value);
  push_event(std::move(ev));
}

bool trace_flush() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.path.empty()) return false;
  std::ofstream out(s.path);
  if (!out) return false;
  // Stream the trace rather than building one Json document: a detailed
  // trace can hold one event per simulated block.
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // thread_name metadata first (tid-sorted via the map), so viewers label
  // every row before the first span lands on it.
  for (const auto& [tid, name] : s.thread_names) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    write_json_string(out, name);
    out << "}}";
  }
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    const Event& ev = s.events[i];
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\":\"" << ev.ph << "\",\"pid\":1,\"tid\":" << ev.tid
        << ",\"ts\":";
    write_json_double(out, ev.ts_us);
    if (ev.ph != 'E') {
      out << ",\"name\":";
      write_json_string(out, ev.name);
    }
    if (ev.ph == 'X') {
      out << ",\"dur\":";
      write_json_double(out, ev.dur_us);
    }
    if (!ev.args.empty() || !ev.str_args.empty()) {
      out << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : ev.args) {
        if (!first_arg) out << ',';
        first_arg = false;
        write_json_string(out, key);
        out << ':';
        write_json_double(out, value);
      }
      for (const auto& [key, value] : ev.str_args) {
        if (!first_arg) out << ',';
        first_arg = false;
        write_json_string(out, key);
        out << ':';
        write_json_string(out, value);
      }
      out << '}';
    }
    out << '}';
  }
  out << "]}\n";
  out.flush();
  if (!out) return false;
  s.events.clear();
  s.flushed_once = true;
  return true;
}

void trace_reset() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.path.clear();
  s.events.clear();
  s.thread_names.clear();
  s.flushed_once = false;
  g_enabled.store(false, std::memory_order_relaxed);
}

}  // namespace accred::obs
