// Dependency-free JSON document model for the observability layer: an
// insertion-ordered value type, a stable writer (shortest round-tripping
// number form, deterministic key order), and a strict recursive-descent
// parser. Small by design — just enough for the bench record schema
// (record.hpp), the trace exporter (trace.hpp), and bench_diff.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace accred::obs {

class Json {
public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Json() = default;
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  Json(std::uint64_t v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}
  Json(std::string_view v) : Json(std::string(v)) {}
  Json(const char* v) : Json(std::string(v)) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  /// Scalar accessors; throw std::runtime_error on a kind mismatch
  /// (as_double accepts both number kinds).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array interface. push() turns a null value into an array.
  Json& push(Json v);
  [[nodiscard]] const std::vector<Json>& elements() const;
  [[nodiscard]] std::size_t size() const;

  /// Object interface (insertion-ordered; set() replaces an existing key
  /// in place so the schema field order stays stable). set() turns a null
  /// value into an object.
  Json& set(std::string key, Json v);
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// find() that throws with the key name when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& items() const;

  /// Serialize. indent = 0 emits compact one-line JSON; indent > 0 pretty
  /// prints with that many spaces per level. Output is deterministic:
  /// insertion order for objects, shortest round-tripping form for doubles.
  void dump(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict parser (no comments, no trailing commas). Throws
  /// std::runtime_error with a byte offset on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

private:
  void dump_impl(std::ostream& os, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Escape `s` into a JSON string literal (including the quotes).
void write_json_string(std::ostream& os, std::string_view s);

/// Shortest decimal form of `v` that parses back to exactly `v`
/// ("1.5", not "1.5000000000000000"); infinities and NaN (invalid JSON)
/// are clamped to null — the cost model never produces them.
void write_json_double(std::ostream& os, double v);

}  // namespace accred::obs
