#include "obs/profiler.hpp"

#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace accred::obs {

StageStats& StageStats::operator+=(const StageStats& o) {
  gmem_requests += o.gmem_requests;
  gmem_segments += o.gmem_segments;
  gmem_bytes += o.gmem_bytes;
  smem_requests += o.smem_requests;
  smem_cycles += o.smem_cycles;
  barriers += o.barriers;
  syncwarps += o.syncwarps;
  warp_epochs += o.warp_epochs;
  alu_units += o.alu_units;
  for (std::size_t i = 0; i < lane_hist.size(); ++i) {
    lane_hist[i] += o.lane_hist[i];
  }
  return *this;
}

double stage_coalescing_efficiency(const StageStats& s) {
  if (s.gmem_segments == 0) return 1.0;
  return static_cast<double>(s.gmem_bytes) /
         (static_cast<double>(s.gmem_segments) * 128.0);
}

double stage_bank_conflict_factor(const StageStats& s) {
  if (s.smem_requests == 0) return 1.0;
  return static_cast<double>(s.smem_cycles) /
         static_cast<double>(s.smem_requests);
}

double stage_divergence(const StageStats& s) {
  std::uint64_t epochs = 0;
  std::uint64_t active_lanes = 0;
  for (std::size_t n = 0; n < s.lane_hist.size(); ++n) {
    epochs += s.lane_hist[n];
    active_lanes += s.lane_hist[n] * n;
  }
  if (epochs == 0) return 0.0;
  return 1.0 - static_cast<double>(active_lanes) /
                   (static_cast<double>(epochs) * StageStats::kLanes);
}

std::uint16_t StageTable::intern(std::string_view name) {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].name == name) return static_cast<std::uint16_t>(i);
  }
  rows_.push_back(Row{std::string(name), {}});
  return static_cast<std::uint16_t>(rows_.size() - 1);
}

const StageTable::Row* StageTable::find(std::string_view name) const {
  for (const Row& r : rows_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

void StageTable::merge(const StageTable& o) {
  for (const Row& r : o.rows_) {
    row(intern(r.name)) += r.stats;
  }
}

void StageTable::reset_stats() {
  for (Row& r : rows_) r.stats = StageStats{};
}

bool profile_env_default() {
  static const bool enabled = [] {
    const char* env = std::getenv("ACCRED_PROFILE");
    return env && *env && std::string_view(env) != "0";
  }();
  return enabled;
}

namespace {

[[nodiscard]] bool row_is_empty(const StageStats& s) {
  return s.gmem_requests == 0 && s.gmem_segments == 0 && s.gmem_bytes == 0 &&
         s.smem_requests == 0 && s.smem_cycles == 0 && s.barriers == 0 &&
         s.syncwarps == 0 && s.warp_epochs == 0 && s.alu_units == 0;
}

}  // namespace

Json profile_to_json(const StageTable& table) {
  Json arr = Json::array();
  for (const StageTable::Row& r : table.rows()) {
    if (row_is_empty(r.stats)) continue;
    Json j = Json::object();
    j.set("stage", r.name);
    j.set("gmem_requests", r.stats.gmem_requests);
    j.set("gmem_segments", r.stats.gmem_segments);
    j.set("gmem_bytes", r.stats.gmem_bytes);
    j.set("smem_requests", r.stats.smem_requests);
    j.set("smem_cycles", r.stats.smem_cycles);
    j.set("barriers", r.stats.barriers);
    j.set("syncwarps", r.stats.syncwarps);
    j.set("warp_epochs", r.stats.warp_epochs);
    j.set("alu_units", r.stats.alu_units);
    j.set("coalescing_efficiency", stage_coalescing_efficiency(r.stats));
    j.set("bank_conflict_factor", stage_bank_conflict_factor(r.stats));
    j.set("divergence", stage_divergence(r.stats));
    Json hist = Json::array();
    for (const std::uint64_t h : r.stats.lane_hist) hist.push(h);
    j.set("lane_occupancy", std::move(hist));
    arr.push(std::move(j));
  }
  return arr;
}

StageTable profile_from_json(const Json& j) {
  StageTable table;
  for (const Json& row : j.elements()) {
    StageStats& s = table.row(table.intern(row.at("stage").as_string()));
    s.gmem_requests = static_cast<std::uint64_t>(row.at("gmem_requests").as_int());
    s.gmem_segments = static_cast<std::uint64_t>(row.at("gmem_segments").as_int());
    s.gmem_bytes = static_cast<std::uint64_t>(row.at("gmem_bytes").as_int());
    s.smem_requests = static_cast<std::uint64_t>(row.at("smem_requests").as_int());
    s.smem_cycles = static_cast<std::uint64_t>(row.at("smem_cycles").as_int());
    s.barriers = static_cast<std::uint64_t>(row.at("barriers").as_int());
    s.syncwarps = static_cast<std::uint64_t>(row.at("syncwarps").as_int());
    s.warp_epochs = static_cast<std::uint64_t>(row.at("warp_epochs").as_int());
    s.alu_units = row.at("alu_units").as_double();
    const Json& hist = row.at("lane_occupancy");
    if (hist.size() != s.lane_hist.size()) {
      throw std::runtime_error("profile stage '" +
                               row.at("stage").as_string() +
                               "': lane_occupancy must have 33 buckets");
    }
    for (std::size_t i = 0; i < s.lane_hist.size(); ++i) {
      s.lane_hist[i] =
          static_cast<std::uint64_t>(hist.elements()[i].as_int());
    }
  }
  return table;
}

void print_profile(std::ostream& os, const StageTable& table) {
  // nvprof-style: one row per stage, counters then derived metrics.
  struct Col {
    const char* head;
    int width;
  };
  static constexpr Col cols[] = {
      {"stage", 16},     {"gmem req", 10},  {"gmem seg", 10},
      {"coal eff", 9},   {"smem req", 10},  {"bank factor", 12},
      {"alu", 12},       {"barriers", 9},   {"syncwarps", 10},
      {"epochs", 9},     {"diverg %", 9},
  };
  for (const Col& c : cols) {
    os << std::left << std::setw(c.width) << c.head << ' ';
  }
  os << '\n';
  const auto old_flags = os.flags();
  for (const StageTable::Row& r : table.rows()) {
    if (row_is_empty(r.stats)) continue;
    std::ostringstream alu;
    alu << std::fixed << std::setprecision(0) << r.stats.alu_units;
    std::ostringstream eff;
    eff << std::fixed << std::setprecision(3)
        << stage_coalescing_efficiency(r.stats);
    std::ostringstream bank;
    bank << std::fixed << std::setprecision(2)
         << stage_bank_conflict_factor(r.stats);
    std::ostringstream div;
    div << std::fixed << std::setprecision(1)
        << stage_divergence(r.stats) * 100.0;
    os << std::left << std::setw(cols[0].width) << r.name << ' '
       << std::setw(cols[1].width) << r.stats.gmem_requests << ' '
       << std::setw(cols[2].width) << r.stats.gmem_segments << ' '
       << std::setw(cols[3].width) << eff.str() << ' '
       << std::setw(cols[4].width) << r.stats.smem_requests << ' '
       << std::setw(cols[5].width) << bank.str() << ' '
       << std::setw(cols[6].width) << alu.str() << ' '
       << std::setw(cols[7].width) << r.stats.barriers << ' '
       << std::setw(cols[8].width) << r.stats.syncwarps << ' '
       << std::setw(cols[9].width) << r.stats.warp_epochs << ' '
       << std::setw(cols[10].width) << div.str() << '\n';
  }
  os.flags(old_flags);
}

}  // namespace accred::obs
