// Optional per-launch event trace in chrome://tracing ("Trace Event
// Format") JSON. Process-wide, thread-safe, and disabled by default: every
// emit call is a no-op behind one relaxed atomic load until a bench or
// example enables it with `--trace FILE` (or the ACCRED_TRACE env var —
// see obs/record.hpp's Session, which wires both).
//
// The gpusim launch driver emits B/E spans for every kernel launch (named
// by SimOptions::label, so the reduce strategies' partial and finalize
// kernels show up by role), one span per host shard of the worker pool,
// per-block complete events carrying barrier-wave counts, and counter
// events for the modeled device time. Open the file at chrome://tracing
// or https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <string>

namespace accred::obs {

/// Numeric event argument ("args" in the trace format).
struct TraceArg {
  const char* key;
  double value;
};

/// String event argument (tenant names, plan outcomes, ...).
struct TraceStrArg {
  const char* key;
  std::string value;
};

/// True once trace_configure() armed a file path. Cheap (one relaxed
/// atomic load) — callers guard instrumentation blocks with it.
[[nodiscard]] bool trace_enabled() noexcept;

/// Arm the tracer to write `path` on flush; an empty path disables and
/// drops any buffered events. Thread-safe; last call wins.
void trace_configure(std::string path);

/// Arm from the ACCRED_TRACE environment variable if set and the tracer
/// is not already armed (flag beats env).
void trace_configure_from_env();

/// The armed output path ("" when disabled).
[[nodiscard]] std::string trace_path();

/// Microseconds since process start (steady clock) — the trace timebase.
[[nodiscard]] double trace_now_us();

/// Duration-begin / duration-end pair on virtual thread `tid`. Begin/end
/// must balance per tid (the trace test asserts this).
void trace_begin(const char* name, std::uint32_t tid,
                 std::initializer_list<TraceArg> args = {});
void trace_end(std::uint32_t tid);

/// Complete event ("X"): a span with explicit start and duration. The
/// second overload also attaches string args (e.g. tenant names).
void trace_complete(const char* name, std::uint32_t tid, double ts_us,
                    double dur_us, std::initializer_list<TraceArg> args = {});
void trace_complete(const char* name, std::uint32_t tid, double ts_us,
                    double dur_us, std::initializer_list<TraceArg> args,
                    std::initializer_list<TraceStrArg> str_args);

/// Name a virtual thread: flush emits one "M"-phase `thread_name`
/// metadata event per named tid (tid-sorted, ahead of all spans) so
/// chrome://tracing shows "worker-0" instead of a bare number. Last call
/// per tid wins; names survive flushes until trace_reset().
void trace_set_thread_name(std::uint32_t tid, std::string name);

/// Counter event ("C") at the current time.
void trace_counter(const char* name, double value);

/// Write all buffered events to the armed path and clear the buffer.
/// Returns false (keeping the buffer) if the file cannot be written.
/// Also registered via atexit once armed, so a crash-free process never
/// silently drops a requested trace.
bool trace_flush();

/// Drop all buffered events and disarm (tests).
void trace_reset();

/// RAII begin/end span.
class TraceSpan {
public:
  TraceSpan(const char* name, std::uint32_t tid,
            std::initializer_list<TraceArg> args = {})
      : tid_(tid), armed_(trace_enabled()) {
    if (armed_) trace_begin(name, tid, args);
  }
  ~TraceSpan() {
    if (armed_) trace_end(tid_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

private:
  std::uint32_t tid_;
  bool armed_;
};

}  // namespace accred::obs
