// Regression diff over two accred.bench records (obs/record.hpp): the CI
// gate behind tools/bench_diff. Entries are joined by name, every
// deterministic metric is compared under a relative tolerance, and the
// verdict maps to a process exit code:
//   0 — within tolerance (improvements included),
//   1 — at least one metric regressed past the tolerance,
//   2 — the records are not comparable (schema name/version/bench
//       mismatch, baseline entry or metric missing from current).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace accred::obs {

struct DiffOptions {
  /// Relative tolerance: a lower-is-better metric regresses when
  /// cur > base * (1 + tolerance); higher-is-better when
  /// cur < base * (1 - tolerance).
  double tolerance = 0.10;
};

/// Parse a tolerance argument: "25%" or "0.25". Throws
/// std::invalid_argument on junk or a negative value.
[[nodiscard]] double parse_tolerance(const std::string& text);

struct DiffLine {
  enum class Status : std::uint8_t { kOk, kImproved, kRegression };
  std::string entry;
  std::string metric;
  double base = 0;
  double current = 0;
  double rel_change = 0;  ///< signed, in the metric's "worse" direction
  Status status = Status::kOk;
};

struct DiffReport {
  int exit_code = 0;
  std::string schema_error;        ///< set when exit_code == 2
  std::vector<DiffLine> lines;     ///< one per compared metric
  std::vector<std::string> notes;  ///< non-fatal observations
  [[nodiscard]] std::size_t regressions() const;
};

/// Metric-name conventions (record.hpp): "wall" metrics are skipped;
/// "eff"/"occupancy"/"hit_rate"/"jobs_per_sec" metrics are
/// better-when-larger.
[[nodiscard]] bool metric_is_gated(const std::string& key);
[[nodiscard]] bool metric_higher_is_better(const std::string& key);

/// Compare two parsed records.
[[nodiscard]] DiffReport diff_records(const Json& baseline,
                                      const Json& current,
                                      const DiffOptions& opts = {});

/// Load both files, parse, and diff; IO/parse failures yield exit_code 2
/// with the reason in schema_error.
[[nodiscard]] DiffReport diff_files(const std::string& baseline_path,
                                    const std::string& current_path,
                                    const DiffOptions& opts = {});

/// Human-readable rendering. `all` prints every compared metric instead
/// of only regressions/improvements.
void print_diff(std::ostream& os, const DiffReport& report, bool all = false);

}  // namespace accred::obs
