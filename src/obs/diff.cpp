#include "obs/diff.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/record.hpp"

namespace accred::obs {

namespace {

DiffReport schema_fail(std::string why) {
  DiffReport r;
  r.exit_code = 2;
  r.schema_error = std::move(why);
  return r;
}

const Json* find_entry(const Json& entries, const std::string& name) {
  for (const Json& e : entries.elements()) {
    if (e.at("name").as_string() == name) return &e;
  }
  return nullptr;
}

}  // namespace

double parse_tolerance(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("empty tolerance");
  std::size_t used = 0;
  double v = std::stod(text, &used);
  if (used < text.size()) {
    if (text.substr(used) != "%") {
      throw std::invalid_argument("bad tolerance '" + text +
                                  "' (want e.g. 0.25 or 25%)");
    }
    v /= 100.0;
  }
  if (v < 0) throw std::invalid_argument("tolerance must be >= 0");
  return v;
}

std::size_t DiffReport::regressions() const {
  std::size_t n = 0;
  for (const DiffLine& l : lines) {
    if (l.status == DiffLine::Status::kRegression) ++n;
  }
  return n;
}

bool metric_is_gated(const std::string& key) {
  return key.find("wall") == std::string::npos;
}

bool metric_higher_is_better(const std::string& key) {
  // Latency names win first: a "_ms" suffix or a percentile infix marks a
  // time (queue_wait_p99_ms, e2e_p50_ms, ...) as lower-is-better no matter
  // what other substrings the name happens to contain.
  if (key.ends_with("_ms") || key.find("_p50") != std::string::npos ||
      key.find("_p99") != std::string::npos) {
    return false;
  }
  // "hit_rate" and "jobs_per_sec" join "eff"/"occupancy" for the service
  // records: a plan-cache hit rate or completion rate that *drops* is the
  // regression. (jobs_per_sec is emitted as wall_jobs_per_sec today, so
  // never gated — the polarity still shapes the wall report's arrows.)
  return key.find("eff") != std::string::npos ||
         key.find("occupancy") != std::string::npos ||
         key.find("hit_rate") != std::string::npos ||
         key.find("jobs_per_sec") != std::string::npos;
}

DiffReport diff_records(const Json& baseline, const Json& current,
                        const DiffOptions& opts) {
  // Comparability gate first: same schema, same version, same bench.
  for (const auto* rec : {&baseline, &current}) {
    if (rec->kind() != Json::Kind::kObject || !rec->find("schema") ||
        !rec->find("schema_version") || !rec->find("entries")) {
      return schema_fail("not an accred.bench record (missing schema/"
                         "schema_version/entries)");
    }
  }
  if (baseline.at("schema").as_string() != kBenchSchema ||
      current.at("schema").as_string() != kBenchSchema) {
    return schema_fail("unknown schema '" +
                       baseline.at("schema").as_string() + "' / '" +
                       current.at("schema").as_string() + "'");
  }
  // Versions inside [compat, current] are mutually comparable: bumps in
  // that window only *add* optional sections (v3's "telemetry"), so a v2
  // baseline still gates a v3 record. Anything older or newer is refused.
  const std::int64_t bv = baseline.at("schema_version").as_int();
  const std::int64_t cv = current.at("schema_version").as_int();
  for (const std::int64_t v : {bv, cv}) {
    if (v < kBenchSchemaCompatVersion || v > kBenchSchemaVersion) {
      return schema_fail(
          "schema_version v" + std::to_string(v) + " outside the comparable"
          " range [v" + std::to_string(kBenchSchemaCompatVersion) + ", v" +
          std::to_string(kBenchSchemaVersion) + "] (baseline v" +
          std::to_string(bv) + ", current v" + std::to_string(cv) + ")");
    }
  }
  const std::string bb = baseline.at("bench").as_string();
  const std::string cb = current.at("bench").as_string();
  if (bb != cb) {
    return schema_fail("comparing different benches: '" + bb + "' vs '" +
                       cb + "'");
  }

  DiffReport report;
  if (bv != cv) {
    report.notes.push_back("cross-version diff: baseline v" +
                           std::to_string(bv) + " vs current v" +
                           std::to_string(cv) +
                           " (newer versions only add optional sections)");
  }
  const Json& bentries = baseline.at("entries");
  const Json& centries = current.at("entries");
  for (const Json& be : bentries.elements()) {
    const std::string& name = be.at("name").as_string();
    const Json* ce = find_entry(centries, name);
    if (!ce) {
      return schema_fail("baseline entry '" + name +
                         "' is missing from the current record");
    }
    const Json& bmetrics = be.at("metrics");
    const Json& cmetrics = ce->at("metrics");
    for (const auto& [key, bval] : bmetrics.items()) {
      if (!metric_is_gated(key)) continue;
      const Json* cval = cmetrics.find(key);
      if (!cval) {
        return schema_fail("metric '" + key + "' of entry '" + name +
                           "' is missing from the current record");
      }
      if (!bval.is_number() || !cval->is_number()) continue;
      const double b = bval.as_double();
      const double c = cval->as_double();
      DiffLine line;
      line.entry = name;
      line.metric = key;
      line.base = b;
      line.current = c;
      // Signed change in the metric's "worse" direction: positive =
      // worse, negative = better, regardless of metric polarity.
      const double sign = metric_higher_is_better(key) ? -1.0 : 1.0;
      if (b == 0.0) {
        line.rel_change = (c == 0.0) ? 0.0
                          : sign * (c > 0 ? std::numeric_limits<double>::infinity()
                                          : -std::numeric_limits<double>::infinity());
      } else {
        line.rel_change = sign * (c - b) / std::abs(b);
      }
      if (line.rel_change > opts.tolerance) {
        line.status = DiffLine::Status::kRegression;
      } else if (line.rel_change < -opts.tolerance) {
        line.status = DiffLine::Status::kImproved;
      }
      report.lines.push_back(std::move(line));
    }
  }
  if (centries.size() > bentries.size()) {
    report.notes.push_back(
        std::to_string(centries.size() - bentries.size()) +
        " entries in the current record have no baseline (not gated)");
  }
  report.exit_code = report.regressions() ? 1 : 0;
  return report;
}

DiffReport diff_files(const std::string& baseline_path,
                      const std::string& current_path,
                      const DiffOptions& opts) {
  Json docs[2];
  const std::string* paths[2] = {&baseline_path, &current_path};
  for (int i = 0; i < 2; ++i) {
    std::ifstream in(*paths[i]);
    if (!in) return schema_fail("cannot open " + *paths[i]);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      docs[i] = Json::parse(buf.str());
    } catch (const std::exception& e) {
      return schema_fail(*paths[i] + ": " + e.what());
    }
  }
  return diff_records(docs[0], docs[1], opts);
}

void print_diff(std::ostream& os, const DiffReport& report, bool all) {
  if (report.exit_code == 2) {
    os << "bench_diff: records not comparable: " << report.schema_error
       << '\n';
    return;
  }
  const auto old_flags = os.flags();
  os << std::fixed;
  std::size_t shown = 0;
  for (const DiffLine& l : report.lines) {
    if (!all && l.status == DiffLine::Status::kOk) continue;
    const char* tag = l.status == DiffLine::Status::kRegression ? "REGRESSION"
                      : l.status == DiffLine::Status::kImproved ? "improved"
                                                                : "ok";
    os << "  " << std::setw(10) << tag << "  " << l.entry << " :: "
       << l.metric << "  " << std::setprecision(6) << l.base << " -> "
       << l.current << "  (" << std::showpos << std::setprecision(1)
       << l.rel_change * 100.0 << "% toward worse)" << std::noshowpos
       << '\n';
    ++shown;
  }
  if (!shown) os << "  all " << report.lines.size() << " metrics ok\n";
  for (const std::string& n : report.notes) os << "  note: " << n << '\n';
  os << (report.exit_code == 0 ? "PASS" : "FAIL") << ": "
     << report.regressions() << " regression(s) across "
     << report.lines.size() << " compared metrics\n";
  os.flags(old_flags);
}

}  // namespace accred::obs
