#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "obs/json.hpp"

namespace accred::obs {

void Histogram::record(double value) {
  if (!(value > 0)) {  // negatives and NaN clamp to the exact 0 bucket
    record_units(0);
    return;
  }
  const double scaled = value * scale_;
  // Saturate instead of overflowing for absurd inputs; the top bucket is
  // open-ended anyway.
  record_units(scaled >= 9.2e18 ? std::uint64_t{1} << 63
                                : static_cast<std::uint64_t>(
                                      std::llround(scaled)));
}

void Histogram::record_units(std::uint64_t units) {
  std::lock_guard<std::mutex> lk(*mu_);
  if (buckets_.empty()) buckets_.assign(kBuckets, 0);
  ++buckets_[bucket_index(units)];
  if (count_ == 0) {
    min_units_ = max_units_ = units;
  } else {
    min_units_ = std::min(min_units_, units);
    max_units_ = std::max(max_units_, units);
  }
  ++count_;
  sum_units_ += units;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lk(*mu_);
  return count_;
}

std::uint64_t Histogram::sum_units() const {
  std::lock_guard<std::mutex> lk(*mu_);
  return sum_units_;
}

std::uint64_t Histogram::min_units() const {
  std::lock_guard<std::mutex> lk(*mu_);
  return min_units_;
}

std::uint64_t Histogram::max_units() const {
  std::lock_guard<std::mutex> lk(*mu_);
  return max_units_;
}

double Histogram::sum() const {
  return static_cast<double>(sum_units()) / scale_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lk(*mu_);
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_units_) /
         (static_cast<double>(count_) * scale_);
}

std::uint32_t Histogram::bucket_index(std::uint64_t units) {
  if (units < kSubBuckets) return static_cast<std::uint32_t>(units);
  const auto major = static_cast<std::uint32_t>(std::bit_width(units)) - 1;
  const auto sub = static_cast<std::uint32_t>(
      (units >> (major - kSubBits)) - kSubBuckets);
  return (major - kSubBits + 1) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_lower_bound(std::uint32_t index) {
  if (index < kSubBuckets) return index;
  const std::uint32_t major = index / kSubBuckets - 1 + kSubBits;
  const std::uint64_t sub = index % kSubBuckets;
  return (kSubBuckets + sub) << (major - kSubBits);
}

double Histogram::percentile(double q) const {
  std::lock_guard<std::mutex> lk(*mu_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  // A saturated rank selects the last order statistic; report the exact
  // observed maximum instead of its bucket's lower bound, which would
  // under-report p100 by up to one bucket width (~6%).
  if (rank >= count_) return static_cast<double>(max_units_) / scale_;
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      // The covering bucket only gives a lower bound, which can straddle
      // the observed minimum; clamp into [min, max] so no quantile falls
      // outside the recorded range.
      const std::uint64_t lower =
          std::clamp(bucket_lower_bound(i), min_units_, max_units_);
      return static_cast<double>(lower) / scale_;
    }
  }
  return static_cast<double>(max_units_) / scale_;  // unreachable
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
Histogram::nonzero_buckets() const {
  std::lock_guard<std::mutex> lk(*mu_);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) out.emplace_back(i, buckets_[i]);
  }
  return out;
}

void Histogram::merge(const Histogram& o) {
  const auto theirs = o.nonzero_buckets();
  std::uint64_t ocount, osum, omin, omax;
  {
    std::lock_guard<std::mutex> lk(*o.mu_);
    ocount = o.count_;
    osum = o.sum_units_;
    omin = o.min_units_;
    omax = o.max_units_;
  }
  if (ocount == 0) return;
  std::lock_guard<std::mutex> lk(*mu_);
  if (buckets_.empty()) buckets_.assign(kBuckets, 0);
  for (const auto& [idx, n] : theirs) buckets_[idx] += n;
  if (count_ == 0) {
    min_units_ = omin;
    max_units_ = omax;
  } else {
    min_units_ = std::min(min_units_, omin);
    max_units_ = std::max(max_units_, omax);
  }
  count_ += ocount;
  sum_units_ += osum;
}

Json Histogram::to_json() const {
  std::lock_guard<std::mutex> lk(*mu_);
  Json j = Json::object();
  j.set("scale", scale_);
  j.set("count", count_);
  j.set("sum_units", sum_units_);
  j.set("min_units", min_units_);
  j.set("max_units", max_units_);
  Json buckets = Json::array();
  for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    Json pair = Json::array();
    pair.push(static_cast<std::int64_t>(i));
    pair.push(buckets_[i]);
    buckets.push(std::move(pair));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

Histogram Histogram::from_json(const Json& j) {
  Histogram h(j.at("scale").as_double());
  if (h.scale_ <= 0) throw std::runtime_error("histogram: bad scale");
  h.buckets_.assign(kBuckets, 0);
  std::uint64_t count = 0;
  for (const Json& pair : j.at("buckets").elements()) {
    if (pair.size() != 2) throw std::runtime_error("histogram: bad bucket");
    const std::int64_t idx = pair.elements()[0].as_int();
    const std::int64_t n = pair.elements()[1].as_int();
    if (idx < 0 || idx >= static_cast<std::int64_t>(kBuckets) || n < 0) {
      throw std::runtime_error("histogram: bucket out of range");
    }
    h.buckets_[static_cast<std::uint32_t>(idx)] +=
        static_cast<std::uint64_t>(n);
    count += static_cast<std::uint64_t>(n);
  }
  h.count_ = static_cast<std::uint64_t>(j.at("count").as_int());
  if (h.count_ != count) {
    throw std::runtime_error("histogram: count does not match buckets");
  }
  h.sum_units_ = static_cast<std::uint64_t>(j.at("sum_units").as_int());
  h.min_units_ = static_cast<std::uint64_t>(j.at("min_units").as_int());
  h.max_units_ = static_cast<std::uint64_t>(j.at("max_units").as_int());
  return h;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double scale) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(scale))
             .first;
  }
  return *it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  Json j = Json::object();
  if (!counters_.empty()) {
    Json c = Json::object();
    for (const auto& [name, counter] : counters_) c.set(name, counter->value());
    j.set("counters", std::move(c));
  }
  if (!gauges_.empty()) {
    Json g = Json::object();
    for (const auto& [name, gauge] : gauges_) g.set(name, gauge->value());
    j.set("gauges", std::move(g));
  }
  if (!histograms_.empty()) {
    Json h = Json::object();
    for (const auto& [name, hist] : histograms_) h.set(name, hist->to_json());
    j.set("histograms", std::move(h));
  }
  return j;
}

bool metrics_env_default() {
  static const bool enabled = [] {
    const char* env = std::getenv("ACCRED_METRICS");
    return env != nullptr && *env != '\0' &&
           std::string_view(env) != "0";
  }();
  return enabled;
}

}  // namespace accred::obs
