// Deterministic metrics registry: the service-tier counterpart of the
// per-launch profiler (DESIGN.md §14). Counters, gauges, and log2-bucketed
// histograms whose contents are a pure function of the values fed to them
// — no wall clock, no sampling, no decay — so a registry snapshot taken at
// a quiescent point (e.g. after ReductionService::drain()) is bit-identical
// for any worker count and any --sim-threads, the same discipline the
// profiler and racecheck merges follow (§7, §9).
//
// Histograms store *exact* event counts in geometric buckets: values are
// converted once to integer units (llround(value * scale); e.g. scale 1e6
// turns milliseconds into nanoseconds), summed and min/max-tracked as
// integers (commutative, so feed order never shows), and bucketed with 16
// linear sub-buckets per power of two (~6% worst-case resolution; units
// below 16 get exact singleton buckets, so zero-valued samples — an empty
// queue — stay exact). Percentile extraction walks the exact cumulative
// counts and returns the covering bucket's lower bound: a deterministic
// pure function of the recorded multiset, never an interpolation.
//
// Serialization (registry_to_json / histogram JSON) is name-sorted and
// integer-valued, so equal registries dump byte-equal JSON — the form the
// schema-v3 "telemetry" record section and tools/metrics_report consume.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace accred::obs {

class Json;

/// Monotonic event counter (relaxed atomic: totals are commutative, so the
/// value at a quiescent point is deterministic for any feed order).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write / high-water gauge over integer units. set() is only
/// deterministic when the caller serializes writers (the service writes
/// gauges from its deterministic virtual timeline); max_of() is
/// commutative and safe from any thread.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void max_of(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram with exact counts (see the header comment for
/// the bucket layout). Thread-safe; merge order never affects contents.
class Histogram {
 public:
  /// 16 linear sub-buckets per power of two.
  static constexpr std::uint32_t kSubBits = 4;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;
  /// Units < kSubBuckets get exact singleton buckets; majors 4..63 get
  /// kSubBuckets each: 16 + 60*16 = 976 buckets cover the full uint64.
  static constexpr std::uint32_t kBuckets =
      kSubBuckets + (64 - kSubBits) * kSubBuckets;

  /// `scale` converts recorded values to integer units
  /// (units = llround(value * scale)); 1e6 stores milliseconds as
  /// nanoseconds. Negative values clamp to 0.
  explicit Histogram(double scale = 1.0) : scale_(scale) {}

  void record(double value);
  void record_units(std::uint64_t units);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t sum_units() const;
  [[nodiscard]] std::uint64_t min_units() const;  ///< 0 when empty
  [[nodiscard]] std::uint64_t max_units() const;  ///< 0 when empty
  [[nodiscard]] double scale() const { return scale_; }
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;  ///< 0 when empty

  /// Value (units / scale) of the bucket lower bound covering the
  /// ceil(q * count)-th smallest sample, q clamped to (0, 1]; 0 when
  /// empty. Exact for units < 16, within one sub-bucket (~6%) otherwise,
  /// and bit-deterministic for any feed order.
  [[nodiscard]] double percentile(double q) const;

  /// Exact bucket index / lower bound mapping (tests and reporting).
  [[nodiscard]] static std::uint32_t bucket_index(std::uint64_t units);
  [[nodiscard]] static std::uint64_t bucket_lower_bound(std::uint32_t index);

  /// Nonzero buckets as (index, count), index-ascending.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint64_t>>
  nonzero_buckets() const;

  /// Fold `o` into this histogram (same scale expected).
  void merge(const Histogram& o);

  /// Serialize: {"scale", "count", "sum_units", "min_units", "max_units",
  /// "buckets": [[index, count], ...]} — all integers except scale, so
  /// equal histograms dump byte-equal.
  [[nodiscard]] Json to_json() const;
  /// Parse the to_json() form back (metrics_report's input path). Throws
  /// std::runtime_error on malformed input.
  [[nodiscard]] static Histogram from_json(const Json& j);

 private:
  double scale_ = 1.0;
  /// Behind unique_ptr so Histogram stays movable (from_json returns by
  /// value); a moved-from histogram must not be used again.
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::uint64_t count_ = 0;
  std::uint64_t sum_units_ = 0;
  std::uint64_t min_units_ = 0;
  std::uint64_t max_units_ = 0;
  std::vector<std::uint64_t> buckets_;  ///< lazily sized to kBuckets
};

/// Named metrics, interned on first use; references stay valid for the
/// registry's lifetime. Iteration (and JSON) is name-sorted, so two
/// registries fed the same values serialize byte-equal regardless of
/// intern order.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// `scale` applies on first intern only (later calls reuse the metric).
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     double scale = 1.0);

  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with every
  /// section name-sorted; sections with no metrics are omitted.
  [[nodiscard]] Json to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Process default for record-telemetry emission when --metrics is absent:
/// the ACCRED_METRICS environment variable, truthy when set and not "0"
/// (parsed once, mirroring ACCRED_PROFILE).
[[nodiscard]] bool metrics_env_default();

}  // namespace accred::obs
