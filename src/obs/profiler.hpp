// Per-stage kernel profiler: the attribution layer behind `--profile`.
//
// LaunchStats answers *how much* a kernel cost; this subsystem answers
// *where*. Kernels name their phases with RAII scopes on the device surface
// (`auto s = ctx.prof_scope("tree");`), the cost model books every
// finalized warp event — global request groups, shared access groups, ALU
// charges, barrier and syncwarp rendezvous — into the stage that was
// active when the event was recorded, and the launch driver folds the
// per-block tables into one StageTable per launch (deterministically, in
// flattened block order, for any sim_threads — the PR-1 contract).
//
// The table also carries the warp-divergence metric the whole-launch
// stats cannot express: a per-warp-epoch active-lane occupancy histogram
// (how many of the 32 lanes did anything between two barriers), from
// which a per-stage divergence fraction is derived.
//
// Profiling is opt-in (SimOptions::profile / --profile / ACCRED_PROFILE);
// when off, the only residue on the hot paths is one null-pointer branch
// per logged event and an empty table in LaunchStats.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace accred::obs {

class Json;

/// Per-stage counter totals. Integer counters merge commutatively; the
/// double merges in deterministic fold order (block order — launch.cpp).
struct StageStats {
  static constexpr std::uint32_t kLanes = 32;

  std::uint64_t gmem_requests = 0;  ///< warp-level global access groups
  std::uint64_t gmem_segments = 0;  ///< 128B transactions after coalescing
  std::uint64_t gmem_bytes = 0;     ///< useful bytes moved
  std::uint64_t smem_requests = 0;  ///< warp-level shared access groups
  std::uint64_t smem_cycles = 0;    ///< groups weighted by conflict degree
  std::uint64_t barriers = 0;       ///< syncthreads waves booked here
  std::uint64_t syncwarps = 0;      ///< syncwarp rendezvous booked here
  std::uint64_t warp_epochs = 0;    ///< warp-epochs this stage was active in
  double alu_units = 0;             ///< lane-summed ALU charges (attribution
                                    ///< metric; the *cost* charge stays the
                                    ///< whole-launch warp-max in LaunchStats)
  /// Occupancy histogram: lane_hist[n] = warp-epochs in which exactly n of
  /// the warp's 32 lanes were active in this stage.
  std::array<std::uint64_t, kLanes + 1> lane_hist{};

  StageStats& operator+=(const StageStats& o);
};

/// Derived per-stage metrics (same definitions as the LaunchStats ones).
[[nodiscard]] double stage_coalescing_efficiency(const StageStats& s);
[[nodiscard]] double stage_bank_conflict_factor(const StageStats& s);
/// Mean fraction of *inactive* lanes over the stage's active warp-epochs:
/// 0 = every participating warp ran all 32 lanes, 0.5 = half the lanes
/// idled on average. 0 when the stage saw no epochs.
[[nodiscard]] double stage_divergence(const StageStats& s);

/// Events recorded outside any prof_scope land in this stage (id 0 once
/// anything interns — see StageTable).
inline constexpr const char* kUnscopedStageName = "(unscoped)";

/// Ordered stage-name -> StageStats table. Default construction allocates
/// nothing (LaunchStats embeds one, so the profiling-off path must stay
/// free); the scheduler arms it per block by interning kUnscopedStageName
/// first, pinning id 0. Iteration order is first-intern order, which is
/// deterministic per kernel; cross-block/-shard merging joins by *name*,
/// so even stage sets that differ per block fold consistently.
class StageTable {
 public:
  struct Row {
    std::string name;
    StageStats stats;
  };

  /// Get-or-create the stage named `name`; returns its id.
  std::uint16_t intern(std::string_view name);

  [[nodiscard]] StageStats& row(std::uint16_t id) { return rows_[id].stats; }
  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  [[nodiscard]] bool empty() const { return rows_.empty(); }

  /// Find a row by name (nullptr when absent).
  [[nodiscard]] const Row* find(std::string_view name) const;

  /// Fold `o` into this table, joining rows by name; o's unmatched stages
  /// append in their first-seen order.
  void merge(const StageTable& o);

  /// Zero every row's stats, keeping the interned names and their ids.
  /// The scheduler recycles its per-block table across the blocks of one
  /// launch (every block runs the same kernel, so the stage set stabilizes
  /// after the first block and arming becomes a stats wipe — DESIGN.md
  /// §12). Inherited zero-stat rows are invisible downstream: merging
  /// joins by name and serialization skips stages that booked nothing.
  void reset_stats();

  /// Drop all rows but keep the vector's capacity. Called at launch
  /// boundaries so stage names never leak between kernels.
  void clear() { rows_.clear(); }

 private:
  std::vector<Row> rows_;
};

/// Process default for SimOptions::profile == false: the ACCRED_PROFILE
/// environment variable, truthy when set and not "0" (parsed once).
[[nodiscard]] bool profile_env_default();

/// Serialize a table as the schema-v2 "profile" section: an array of
/// per-stage objects (raw counters, derived metrics, lane histogram) in
/// table order, skipping stages that booked nothing.
[[nodiscard]] Json profile_to_json(const StageTable& table);

/// Parse a "profile" section back into a table (prof_report's input
/// path). Throws std::runtime_error on a malformed section.
[[nodiscard]] StageTable profile_from_json(const Json& j);

/// Render the nvprof-style per-stage table (prof_report and the benches'
/// `--profile` console output share this).
void print_profile(std::ostream& os, const StageTable& table);

}  // namespace accred::obs
