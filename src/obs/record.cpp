#include "obs/record.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace accred::obs {

namespace {

Json dim3_to_json(const gpusim::Dim3& d) {
  Json j = Json::array();
  j.push(static_cast<std::int64_t>(d.x));
  j.push(static_cast<std::int64_t>(d.y));
  j.push(static_cast<std::int64_t>(d.z));
  return j;
}

Json race_access_to_json(const gpusim::RaceAccess& a) {
  Json j = Json::object();
  j.set("thread", dim3_to_json(a.thread));
  j.set("access", a.write ? "write" : "read");
  j.set("stage", a.stage);
  return j;
}

Json race_report_to_json(const gpusim::RaceReport& r) {
  Json j = Json::object();
  j.set("kind", r.kind());
  j.set("space",
        r.space == gpusim::RaceReport::Space::kShared ? "shared" : "global");
  j.set("addr", static_cast<std::int64_t>(r.addr));
  j.set("block", dim3_to_json(r.block));
  j.set("first", race_access_to_json(r.first));
  j.set("second", race_access_to_json(r.second));
  return j;
}

Json fault_event_to_json(const gpusim::FaultEvent& e) {
  Json j = Json::object();
  j.set("kind", to_string(e.kind));
  j.set("block", dim3_to_json(e.block));
  j.set("warp", static_cast<std::int64_t>(e.warp));
  if (!e.stage.empty()) j.set("stage", e.stage);
  j.set("detail", e.detail);
  return j;
}

Json error_to_json(const gpusim::LaunchErrorInfo& info) {
  Json j = Json::object();
  j.set("code", to_string(info.code));
  j.set("message", info.message);
  if (!info.stage.empty()) j.set("stage", info.stage);
  if (info.injected) j.set("injected", true);
  if (info.has_site) {
    j.set("block", dim3_to_json(info.block));
    j.set("warp", static_cast<std::int64_t>(info.warp));
    j.set("barrier_seq", static_cast<std::int64_t>(info.barrier_seq));
    j.set("step", static_cast<std::int64_t>(info.step));
  }
  return j;
}

}  // namespace

Json stats_to_json(const gpusim::LaunchStats& s,
                   const gpusim::DeviceLimits& lim) {
  Json j = Json::object();
  j.set("blocks", s.blocks);
  j.set("threads", s.threads);
  j.set("gmem_requests", s.gmem_requests);
  j.set("gmem_segments", s.gmem_segments);
  j.set("gmem_bytes", s.gmem_bytes);
  j.set("smem_requests", s.smem_requests);
  j.set("smem_cycles", s.smem_cycles);
  j.set("barriers", s.barriers);
  j.set("syncwarps", s.syncwarps);
  j.set("alu_units", s.alu_units);
  j.set("device_time_ms", s.device_time_ns / 1e6);
  j.set("wall_time_ms", s.wall_time_ns / 1e6);
  j.set("coalescing_efficiency", gpusim::coalescing_efficiency(s));
  j.set("bank_conflict_factor", gpusim::bank_conflict_factor(s));
  // Round-robin block assignment (cost_model.cpp): a launch with B blocks
  // populates min(B, num_sms) SMs.
  const double populated = static_cast<double>(
      std::min<std::uint64_t>(s.blocks, lim.num_sms));
  j.set("sm_occupancy", lim.num_sms ? populated / lim.num_sms : 0.0);
  // Racecheck fields appear only when the launch ran under the detector,
  // keeping records (and the committed baselines) bit-identical otherwise.
  if (s.racecheck) j.set("races", s.races);
  // Divergence tallies, the structured error, and the fault-injection block
  // follow the same rule: emitted only when nonzero / armed, so clean
  // baseline records never change shape.
  if (s.barrier_exit_divergence > 0) {
    j.set("barrier_exit_divergence", s.barrier_exit_divergence);
  }
  if (s.barrier_site_mismatch > 0) {
    j.set("barrier_site_mismatch", s.barrier_site_mismatch);
  }
  if (s.error) j.set("error", error_to_json(s.error));
  if (s.faults_armed) {
    Json f = Json::object();
    f.set("armed", true);
    Json events = Json::array();
    for (const gpusim::FaultEvent& e : s.fault_events) {
      events.push(fault_event_to_json(e));
    }
    f.set("events", std::move(events));
    j.set("faults", std::move(f));
  }
  return j;
}

BenchEntry& BenchEntry::metric(const std::string& key, double value) {
  metrics_.set(key, value);
  return *this;
}

BenchEntry& BenchEntry::attr(const std::string& key, std::string value) {
  attrs_.set(key, Json(std::move(value)));
  return *this;
}

BenchEntry& BenchEntry::stats(const gpusim::LaunchStats& s,
                              const gpusim::DeviceLimits& lim) {
  stats_ = stats_to_json(s, lim);
  if (!s.profile.empty()) profile(s.profile);
  if (s.racecheck) {
    // Present (possibly empty) whenever the detector ran, so
    // tools/racecheck_report can tell "clean" from "not checked".
    Json arr = Json::array();
    for (const gpusim::RaceReport& r : s.race_reports) {
      arr.push(race_report_to_json(r));
    }
    races_ = std::move(arr);
  }
  return *this;
}

BenchEntry& BenchEntry::profile(const StageTable& table) {
  profile_ = profile_to_json(table);
  return *this;
}

BenchEntry& BenchEntry::telemetry(Json registry_dump) {
  telemetry_ = std::move(registry_dump);
  return *this;
}

Json BenchEntry::to_json() const {
  Json j = Json::object();
  j.set("name", name_);
  j.set("metrics", metrics_);
  if (attrs_.size() > 0) j.set("attrs", attrs_);
  if (stats_) j.set("stats", *stats_);
  if (profile_) j.set("profile", *profile_);
  if (races_) j.set("races", *races_);
  if (telemetry_) j.set("telemetry", *telemetry_);
  return j;
}

BenchEntry& RunRecord::entry(const std::string& name) {
  for (BenchEntry& e : entries_) {
    if (e.name() == name) return e;
  }
  return entries_.emplace_back(name);
}

void RunRecord::meta(const std::string& key, std::string value) {
  meta_.set(key, Json(std::move(value)));
}

void RunRecord::meta(const std::string& key, double value) {
  meta_.set(key, value);
}

void RunRecord::meta(const std::string& key, std::int64_t value) {
  meta_.set(key, value);
}

Json RunRecord::to_json() const {
  Json j = Json::object();
  j.set("schema", kBenchSchema);
  j.set("schema_version", kBenchSchemaVersion);
  j.set("bench", bench_);
  if (meta_.size() > 0) j.set("meta", meta_);
  Json entries = Json::array();
  for (const BenchEntry& e : entries_) entries.push(e.to_json());
  j.set("entries", std::move(entries));
  return j;
}

bool RunRecord::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  to_json().dump(out, 2);
  out << '\n';
  out.flush();
  return static_cast<bool>(out);
}

Session::Session(const util::Cli& cli, std::string bench_name)
    : record_(std::move(bench_name)), json_path_(cli.get("json", "")) {
  if (const std::string t = cli.get("trace", ""); !t.empty()) {
    trace_configure(t);
  } else {
    trace_configure_from_env();
  }
}

bool Session::finish() {
  if (finished_) return true;
  finished_ = true;
  bool ok = true;
  if (!json_path_.empty()) {
    ok = record_.write(json_path_);
    if (ok) {
      std::cerr << "[obs] wrote " << json_path_ << " ("
                << record_.entry_count() << " entries)\n";
    } else {
      std::cerr << "[obs] FAILED to write " << json_path_ << "\n";
    }
  }
  if (trace_enabled()) {
    if (trace_flush()) {
      std::cerr << "[obs] wrote trace " << trace_path() << "\n";
    } else {
      std::cerr << "[obs] FAILED to write trace " << trace_path() << "\n";
      ok = false;
    }
  }
  return ok;
}

Session::~Session() { finish(); }

}  // namespace accred::obs
