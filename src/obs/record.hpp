// Structured run records: the machine-readable twin of the paper-shaped
// text tables every bench and example prints. One RunRecord per process
// run; one BenchEntry per table row (uniquely named, so bench_diff can
// match rows across runs); LaunchStats serialize with every raw counter
// plus the derived metrics the paper argues from.
//
// Schema stability contract (DESIGN.md §8): field names and meanings never
// change within a schema_version; adding fields is allowed, removing or
// renaming bumps the version, and tools/bench_diff refuses to compare
// records across versions.
//
// Metric-name conventions consumed by bench_diff:
//   * keys containing "wall" are host wall-clock times — informational,
//     never gated (everything else in "metrics" must be deterministic);
//   * keys containing "eff", "occupancy", "hit_rate", or "jobs_per_sec"
//     are better-when-larger; all other metrics (times, counters) are
//     better-when-smaller.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/dim3.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"

namespace accred::obs {

inline constexpr const char* kBenchSchema = "accred.bench";
/// v2: entries may carry a "profile" section (per-stage attribution from
/// obs/profiler.hpp) alongside "stats"; later additions within v2 (allowed
/// by the contract above): a "races" stats counter and a per-entry "races"
/// report array, both emitted only when the launch ran under racecheck.
/// v3: entries may carry a "telemetry" section (a MetricsRegistry dump —
/// service latency histograms and lifecycle counters, DESIGN.md §14),
/// emitted only when metrics emission is on. Version history in
/// DESIGN.md §8.
inline constexpr std::int64_t kBenchSchemaVersion = 3;
/// Oldest baseline version bench_diff still compares against the current
/// one. v3 only *adds* an optional section, so v2 baselines stay
/// comparable; v1 predates the profile section's stage-name stability
/// guarantees and is refused.
inline constexpr std::int64_t kBenchSchemaCompatVersion = 2;

/// Serialize one LaunchStats: all raw counters plus derived coalescing
/// efficiency, bank-conflict factor, and SM occupancy (populated SMs over
/// the device's SM count under round-robin block assignment).
[[nodiscard]] Json stats_to_json(const gpusim::LaunchStats& s,
                                 const gpusim::DeviceLimits& lim = {});

/// One named row of a bench record. Names must be unique within a record
/// — they are the join key bench_diff matches rows by.
class BenchEntry {
public:
  explicit BenchEntry(std::string name) : name_(std::move(name)) {}

  /// Add a numeric metric (see the naming conventions above).
  BenchEntry& metric(const std::string& key, double value);
  /// Add a descriptive string attribute (compiler, verification status...).
  BenchEntry& attr(const std::string& key, std::string value);
  /// Attach the full LaunchStats block. When `s.profile` is non-empty
  /// (the launch ran with profiling on), the per-stage table is attached
  /// as the entry's "profile" section too.
  BenchEntry& stats(const gpusim::LaunchStats& s,
                    const gpusim::DeviceLimits& lim = {});

  /// Attach a per-stage profile section explicitly (schema v2).
  BenchEntry& profile(const StageTable& table);

  /// Attach a telemetry section (schema v3): a MetricsRegistry::to_json()
  /// dump. Callers gate this on --metrics / ACCRED_METRICS so metrics-off
  /// records keep their pre-v3 shape.
  BenchEntry& telemetry(Json registry_dump);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Json to_json() const;

private:
  std::string name_;
  Json metrics_ = Json::object();
  Json attrs_ = Json::object();
  std::optional<Json> stats_;
  std::optional<Json> profile_;
  /// Race reports (schema v2 addition): set — possibly to an empty array —
  /// whenever the attached stats ran under racecheck, absent otherwise.
  std::optional<Json> races_;
  /// Telemetry section (schema v3 addition): set only when the harness
  /// runs with metrics emission on, absent otherwise.
  std::optional<Json> telemetry_;
};

/// A whole-run record for one bench executable.
class RunRecord {
public:
  explicit RunRecord(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  /// Get-or-create the entry named `name` (creation order is emission
  /// order, so records stay diffable as text too).
  BenchEntry& entry(const std::string& name);

  /// Run-level metadata (geometry, extents, profile, ...).
  void meta(const std::string& key, std::string value);
  void meta(const std::string& key, double value);
  void meta(const std::string& key, std::int64_t value);

  [[nodiscard]] const std::string& bench() const { return bench_; }
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  [[nodiscard]] Json to_json() const;

  /// Pretty-print the record to `path`; returns false on IO failure.
  [[nodiscard]] bool write(const std::string& path) const;

private:
  std::string bench_;
  Json meta_ = Json::object();
  std::vector<BenchEntry> entries_;
};

/// Per-executable observability session: reads `--json FILE` and
/// `--trace FILE` (falling back to the ACCRED_TRACE env var) from the
/// already-parsed CLI, exposes the RunRecord the harness fills, and on
/// destruction writes the record and flushes the trace. Harness usage:
///
///   obs::Session obs(cli, "table2_testsuite");
///   obs.record().entry("gang/+/float/openuh").metric("device_ms", ...);
class Session {
public:
  Session(const util::Cli& cli, std::string bench_name);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] RunRecord& record() { return record_; }
  [[nodiscard]] bool json_enabled() const { return !json_path_.empty(); }

  /// Write the record now (idempotent; the destructor then skips it).
  /// Returns true if nothing was requested or the write succeeded.
  bool finish();

private:
  RunRecord record_;
  std::string json_path_;
  bool finished_ = false;
};

}  // namespace accred::obs
