#include "testsuite/report.hpp"

#include <iomanip>
#include <sstream>

#include "util/table.hpp"

namespace accred::testsuite {

std::string cell_text(const CaseOutcome& o) {
  switch (o.status) {
    case acc::Robustness::kCompileError:
      return "CE";
    case acc::Robustness::kRuntimeFailure:
      return "F";
    case acc::Robustness::kOk:
      break;
  }
  if (!o.verified) return "F(*)";  // our own implementation failed: loud
  return util::TextTable::num(o.device_ms, 2);
}

void Report::print_table2(std::ostream& os,
                          const std::vector<acc::DataType>& types,
                          const std::vector<acc::CompilerId>& compilers) const {
  util::TextTable table;
  std::vector<std::string> header = {"Reduction Position", "Op"};
  for (acc::DataType t : types) {
    for (acc::CompilerId c : compilers) {
      header.push_back(std::string(to_string(t)) + "/" +
                       std::string(to_string(c)));
    }
  }
  table.header(std::move(header));

  // Discover the (position, op) rows actually present, in registry order.
  for (acc::Position pos : all_positions()) {
    for (acc::ReductionOp op :
         {acc::ReductionOp::kSum, acc::ReductionOp::kProd,
          acc::ReductionOp::kMax, acc::ReductionOp::kMin,
          acc::ReductionOp::kBitAnd, acc::ReductionOp::kBitOr,
          acc::ReductionOp::kBitXor, acc::ReductionOp::kLogAnd,
          acc::ReductionOp::kLogOr}) {
      std::vector<std::string> row = {std::string(to_string(pos)),
                                      std::string(to_string(op))};
      bool any = false;
      for (acc::DataType t : types) {
        for (acc::CompilerId c : compilers) {
          auto it = cells_.find(CellKey{pos, op, t, c});
          if (it == cells_.end()) {
            row.push_back("-");
          } else {
            row.push_back(cell_text(it->second));
            any = true;
          }
        }
      }
      if (any) table.row(std::move(row));
    }
  }
  os << "Performance results of the reduction testsuite. Time is modeled "
        "Kepler ms; F = failed, CE = compile error (modeled robustness of "
        "the closed compilers; F(*) would mean OUR verification failed).\n";
  table.print(os);
}

void Report::print_fig11(std::ostream& os,
                         const std::vector<acc::DataType>& types,
                         const std::vector<acc::CompilerId>& compilers) const {
  for (acc::Position pos : all_positions()) {
    for (acc::ReductionOp op :
         {acc::ReductionOp::kSum, acc::ReductionOp::kProd}) {
      bool any = false;
      for (const auto& [key, outcome] : cells_) {
        if (key.pos == pos && key.op == op) any = true;
      }
      if (!any) continue;
      os << "# fig11 series: " << to_string(pos) << " [" << to_string(op)
         << "]\n";
      util::TextTable table;
      std::vector<std::string> header = {"compiler"};
      for (acc::DataType t : types) header.emplace_back(to_string(t));
      table.header(std::move(header));
      for (acc::CompilerId c : compilers) {
        std::vector<std::string> row = {std::string(to_string(c))};
        for (acc::DataType t : types) {
          auto it = cells_.find(CellKey{pos, op, t, c});
          row.push_back(it == cells_.end() ? "-" : cell_text(it->second));
        }
        table.row(std::move(row));
      }
      table.print(os);
      os << '\n';
    }
  }
}

void Report::print_verification(std::ostream& os) const {
  struct Tally {
    int passed = 0;
    int failed = 0;
    int unsupported = 0;
  };
  std::map<acc::CompilerId, Tally> tally;
  for (const auto& [key, outcome] : cells_) {
    Tally& t = tally[key.compiler];
    if (outcome.status != acc::Robustness::kOk) {
      t.unsupported += 1;
    } else if (outcome.verified) {
      t.passed += 1;
    } else {
      t.failed += 1;
    }
  }
  os << "Verification summary (vs sequential CPU fold):\n";
  for (const auto& [id, t] : tally) {
    os << "  " << std::left << std::setw(10) << to_string(id) << " passed "
       << t.passed << ", failed " << t.failed << ", modeled-unsupported "
       << t.unsupported << '\n';
  }
}

void Report::to_record(obs::RunRecord& rec) const {
  struct Tally {
    int passed = 0;
    int failed = 0;
    int unsupported = 0;
  };
  std::map<acc::CompilerId, Tally> tally;
  for (const auto& [key, outcome] : cells_) {
    std::string name = std::string(to_string(key.pos)) + "/" +
                       std::string(to_string(key.op)) + "/" +
                       std::string(to_string(key.type)) + "/" +
                       std::string(to_string(key.compiler));
    for (char& c : name) {
      if (c == ' ') c = '_';
    }
    obs::BenchEntry& e = rec.entry(name);
    Tally& t = tally[key.compiler];
    if (outcome.status != acc::Robustness::kOk) {
      e.attr("status", outcome.status == acc::Robustness::kCompileError
                           ? "CE"
                           : "F");
      t.unsupported += 1;
      continue;
    }
    e.attr("status", "ok");
    e.attr("verified", outcome.verified ? "yes" : "NO");
    if (outcome.verified) {
      t.passed += 1;
    } else {
      t.failed += 1;
    }
    e.metric("device_ms", outcome.device_ms);
    e.metric("kernels", outcome.kernels);
    e.metric("wall_ms", outcome.wall_ms);
    e.stats(outcome.stats);
    if (!outcome.detail.empty()) e.attr("detail", outcome.detail);
    // Degradation history: all conditional, so clean baseline records stay
    // bit-identical to pre-fault-campaign ones.
    if (outcome.attempts > 1) {
      e.metric("attempts", outcome.attempts);
    }
    if (outcome.recovered) e.attr("recovered", "yes");
    if (outcome.degraded) e.attr("degraded", "yes");
    if (!outcome.events.empty()) {
      std::string joined;
      for (const std::string& ev : outcome.events) {
        if (!joined.empty()) joined += " | ";
        joined += ev;
      }
      e.attr("events", joined);
    }
  }
  for (const auto& [id, t] : tally) {
    const std::string prefix = "verify_" + std::string(to_string(id));
    rec.meta(prefix + "_passed", static_cast<std::int64_t>(t.passed));
    rec.meta(prefix + "_failed", static_cast<std::int64_t>(t.failed));
    rec.meta(prefix + "_unsupported",
             static_cast<std::int64_t>(t.unsupported));
  }
}

}  // namespace accred::testsuite
