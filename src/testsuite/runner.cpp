#include "testsuite/runner.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "acc/executor.hpp"
#include "gpusim/error.hpp"
#include "gpusim/faultinject.hpp"
#include "reduce/argminmax.hpp"
#include "reduce/segmented_reduce.hpp"
#include "testsuite/values.hpp"

namespace accred::testsuite {

namespace {

using acc::Position;

/// Where a case's reduction variable accumulates and is next used
/// (level indices into the canonical gang/worker/vector triple nest).
struct CaseSemantics {
  int accum_level;
  int use_level;
};

CaseSemantics semantics_of(Position pos) {
  switch (pos) {
    case Position::kGang: return {0, acc::VarInfo::kHostUse};
    case Position::kWorker: return {1, 0};
    case Position::kVector: return {2, 1};
    case Position::kGangWorker: return {1, acc::VarInfo::kHostUse};
    case Position::kWorkerVector: return {2, 0};
    case Position::kGangWorkerVector: return {2, acc::VarInfo::kHostUse};
    case Position::kSameLineGangWorkerVector:
      return {0, acc::VarInfo::kHostUse};
  }
  return {0, acc::VarInfo::kHostUse};
}

/// Build the nest the way a user of this discipline writes it.
acc::NestIR build_nest(Position pos, acc::ReductionOp op, acc::DataType type,
                       const CaseGeometry& geo, const acc::LaunchConfig& cfg,
                       acc::ClauseDiscipline discipline) {
  acc::NestIR nest;
  nest.config = cfg;
  const CaseSemantics sem = semantics_of(pos);
  const acc::ReductionClause clause{op, "red"};

  if (pos == Position::kSameLineGangWorkerVector) {
    acc::LoopSpec loop;
    loop.par = acc::Par::kGang | acc::Par::kWorker | acc::Par::kVector;
    loop.extent = geo.same_loop_extent;
    loop.reductions = {clause};
    nest.loops = {loop};
  } else {
    nest.loops = {
        acc::LoopSpec{acc::mask_of(acc::Par::kGang), geo.dims.nk, {}},
        acc::LoopSpec{acc::mask_of(acc::Par::kWorker), geo.dims.nj, {}},
        acc::LoopSpec{acc::mask_of(acc::Par::kVector), geo.dims.ni, {}},
    };
    if (discipline == acc::ClauseDiscipline::kExplicitAllLevels) {
      for (int l = sem.use_level + 1; l <= sem.accum_level; ++l) {
        nest.loops[static_cast<std::size_t>(l)].reductions = {clause};
      }
    } else {
      // OpenUH style: one clause on the loop closest to the next use.
      nest.loops[static_cast<std::size_t>(sem.use_level + 1)].reductions = {
          clause};
    }
  }
  nest.vars = {{"red", type, sem.accum_level, sem.use_level}};
  return nest;
}

/// FNV-1a fold over raw bytes (result fingerprinting).
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
CaseOutcome run_typed(acc::CompilerId id, const CaseSpec& spec,
                      const RunnerOptions& opts,
                      const acc::ExecutionPlan* preplanned,
                      bool apply_robustness = true) {
  CaseOutcome out;
  if (apply_robustness) {
    out.status = table2_robustness(id, spec.pos, spec.op, spec.type);
    if (out.status != acc::Robustness::kOk) return out;
  }

  const CaseGeometry geo = case_geometry(spec.pos, opts.reduction_extent);
  const acc::CompilerProfile& prof = acc::profile(id);
  acc::ExecutionPlan plan;
  if (preplanned != nullptr) {
    plan = *preplanned;  // e.g. a service plan-cache hit
  } else {
    const acc::NestIR nest = build_nest(spec.pos, spec.op, spec.type, geo,
                                        opts.config, prof.discipline);
    plan = acc::plan_single(nest, prof);
  }
  if (opts.sim_threads != 0) {
    plan.strategy.sim.sim_threads = opts.sim_threads;
  }
  if (opts.racecheck) plan.strategy.sim.racecheck = true;
  if (opts.error_on_race) plan.strategy.sim.error_on_race = true;
  plan.strategy.sim.max_steps = opts.max_steps;
  plan.strategy.sim.faults = opts.faults;
  plan.strategy.sim.cancel_token = opts.cancel;

  gpusim::Device dev(opts.device_limits);
  // Arm injected allocation failures on the runner's own buffers too; each
  // arm is one-shot (device.hpp), so the retry loop below recovers.
  const std::string fault_spec =
      !opts.faults.empty() ? opts.faults : gpusim::faults_env_default();
  if (!fault_spec.empty()) {
    const auto fplan = gpusim::FaultPlan::parse(fault_spec);
    if (fplan.has_alloc_faults()) dev.arm_alloc_faults(fplan);
  }
  const bool same_loop = spec.pos == Position::kSameLineGangWorkerVector;
  const std::size_t volume = static_cast<std::size_t>(
      same_loop ? geo.same_loop_extent
                : geo.dims.nk * geo.dims.nj * geo.dims.ni);

  const bool copy_work = opts.parallel_work && !same_loop;
  // Per-instance output slots for the vector / worker positions.
  const std::size_t out_slots =
      spec.pos == Position::kVector
          ? static_cast<std::size_t>(geo.dims.nk * geo.dims.nj)
          : (spec.pos == Position::kWorker ||
                     spec.pos == Position::kWorkerVector
                 ? static_cast<std::size_t>(geo.dims.nk)
                 : 1);

  // The runner's own allocations, behind the same retry policy as the
  // kernels: an injected alloc_fail arm is one-shot, so re-running the
  // block recovers (the failed attempt is recorded like any other).
  gpusim::DeviceBuffer<T> input;
  gpusim::DeviceBuffer<T> temp;
  gpusim::DeviceBuffer<T> result_buf;
  int alloc_failures = 0;
  std::vector<gpusim::FaultEvent> alloc_events;
  for (;;) {
    try {
      input = dev.alloc<T>(volume, "input");
      if (copy_work) temp = dev.alloc<T>(volume, "temp");
      result_buf = dev.alloc<T>(out_slots, "result");
      break;
    } catch (const gpusim::LaunchError& e) {
      ++alloc_failures;
      out.events.push_back("attempt " + std::to_string(alloc_failures) +
                           " failed: " + to_string(e.info()) +
                           " -> retry allocation");
      // An injected alloc_fail fires outside any launch, so the campaign
      // accounting gets its FaultEvent synthesized here.
      if (e.info().injected) {
        gpusim::FaultEvent fe;
        fe.kind = gpusim::FaultKind::kAllocFail;
        fe.stage = e.info().stage;
        fe.detail = e.info().message;
        alloc_events.push_back(std::move(fe));
      }
      if (alloc_failures > opts.max_retries) {
        out.attempts = alloc_failures;
        out.stats.error = e.info();
        out.stats.faults_armed = !fault_spec.empty();
        out.stats.fault_events = std::move(alloc_events);
        out.detail = to_string(e.info());
        return out;
      }
    }
  }
  {
    auto host = input.host_span();
    for (std::size_t i = 0; i < volume; ++i) {
      host[i] = testsuite_value<T>(spec.op, i);
    }
  }
  auto in_view = input.view();
  gpusim::GlobalView<T> temp_view{};
  if (copy_work) temp_view = temp.view();
  auto out_view = result_buf.view();

  const auto [nk, nj, ni] = geo.dims;
  reduce::Bindings<T> b;
  if (copy_work) {
    b.parallel_work = [=](gpusim::ThreadCtx& ctx, std::int64_t k,
                          std::int64_t j, std::int64_t i) {
      const auto idx = static_cast<std::size_t>((k * nj + j) * ni + i);
      ctx.st(temp_view, idx, ctx.ld(in_view, idx));
    };
  }
  switch (spec.pos) {
    case Position::kGang:
      b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t,
                      std::int64_t) {
        return ctx.ld(in_view, static_cast<std::size_t>(k * nj * ni));
      };
      break;
    case Position::kWorker:
    case Position::kGangWorker:
      b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                      std::int64_t) {
        return ctx.ld(in_view, static_cast<std::size_t>((k * nj + j) * ni));
      };
      break;
    case Position::kVector:
    case Position::kWorkerVector:
    case Position::kGangWorkerVector:
      b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                      std::int64_t i) {
        return ctx.ld(in_view,
                      static_cast<std::size_t>((k * nj + j) * ni + i));
      };
      break;
    case Position::kSameLineGangWorkerVector:
      b.contrib = [=](gpusim::ThreadCtx& ctx, std::int64_t idx, std::int64_t,
                      std::int64_t) {
        return ctx.ld(in_view, static_cast<std::size_t>(idx));
      };
      break;
  }
  if (spec.pos == Position::kVector) {
    b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t j,
                 T r) {
      ctx.st(out_view, static_cast<std::size_t>(k * nj + j), r);
    };
  } else if (spec.pos == Position::kWorker ||
             spec.pos == Position::kWorkerVector) {
    // Both positions produce one result per gang (k) instance.
    b.sink = [=](gpusim::ThreadCtx& ctx, std::int64_t k, std::int64_t, T r) {
      ctx.st(out_view, static_cast<std::size_t>(k), r);
    };
  }

  // ---- Verification against the sequential CPU fold ----------------
  // Runs as execute_guarded's numeric guard after every attempt: a
  // mismatch (e.g. an injected bitflip's silent corruption) fails the
  // attempt and drives the retry/degradation ladder instead of merely
  // flagging the cell. float references accumulate in double: past ~2^24
  // elements a float running sum rounds away every addend, so the
  // *reference* would be the wrong side of the comparison (the device's
  // tree is far more accurate). Bitwise operators never reach here with
  // floating T.
  using Acc = std::conditional_t<std::is_same_v<T, float>, double, T>;
  const acc::RuntimeOp<Acc> rop_acc{spec.op};
  const acc::RuntimeOp<T> rop{spec.op};
  const auto host_in = input.host_span();
  auto fold_strided = [&](std::size_t base, std::size_t stride,
                          std::size_t count) {
    Acc acc_v = rop_acc.identity();
    for (std::size_t i = 0; i < count; ++i) {
      acc_v = rop_acc.apply(acc_v, static_cast<Acc>(host_in[base + i * stride]));
    }
    return static_cast<T>(acc_v);
  };

  auto verify = [&](const reduce::ReduceResult<T>& res,
                    std::string& why) -> bool {
    bool ok = true;
    std::ostringstream detail;
    auto check = [&](T expect, T actual, const char* what) {
      if (!reduction_result_matches(expect, actual,
                                    static_cast<std::uint64_t>(
                                        geo.contrib_count))) {
        ok = false;
        detail << what << ": expected " << expect << " got " << actual << "; ";
      }
    };

    switch (spec.pos) {
      case Position::kGang:
        check(fold_strided(0, static_cast<std::size_t>(nj * ni),
                           static_cast<std::size_t>(nk)),
              res.scalar.value_or(rop.identity()), "scalar");
        break;
      case Position::kGangWorker:
        check(fold_strided(0, static_cast<std::size_t>(ni),
                           static_cast<std::size_t>(nk * nj)),
              res.scalar.value_or(rop.identity()), "scalar");
        break;
      case Position::kGangWorkerVector:
      case Position::kSameLineGangWorkerVector:
        check(fold_strided(0, 1, volume),
              res.scalar.value_or(rop.identity()), "scalar");
        break;
      case Position::kWorker:
        for (std::int64_t k = 0; k < nk; ++k) {
          check(fold_strided(static_cast<std::size_t>(k * nj * ni),
                             static_cast<std::size_t>(ni),
                             static_cast<std::size_t>(nj)),
                result_buf.host_span()[static_cast<std::size_t>(k)],
                "worker instance");
        }
        break;
      case Position::kVector:
        for (std::int64_t k = 0; k < nk; ++k) {
          for (std::int64_t j = 0; j < nj; ++j) {
            check(fold_strided(static_cast<std::size_t>((k * nj + j) * ni), 1,
                               static_cast<std::size_t>(ni)),
                  result_buf
                      .host_span()[static_cast<std::size_t>(k * nj + j)],
                  "vector instance");
          }
        }
        break;
      case Position::kWorkerVector:
        for (std::int64_t k = 0; k < nk; ++k) {
          check(fold_strided(static_cast<std::size_t>(k * nj * ni), 1,
                             static_cast<std::size_t>(nj * ni)),
                result_buf.host_span()[static_cast<std::size_t>(k)],
                "worker-vector instance");
        }
        break;
    }

    // Spot-check the parallel copy actually happened.
    if (copy_work && volume > 0) {
      const auto host_temp = temp.host_span();
      for (std::size_t s = 0; s < 997 && s < volume; ++s) {
        const std::size_t idx = (s * 104729) % volume;
        if (host_temp[idx] != host_in[idx]) {
          ok = false;
          detail << "parallel copy missing at " << idx << "; ";
          break;
        }
      }
    }
    why = detail.str();
    return ok;
  };

  acc::GuardPolicy policy;
  policy.max_retries = opts.max_retries;
  policy.degrade = opts.degrade;
  policy.max_degrade_rungs = opts.max_degrade_rungs;
  policy.max_total_attempts = opts.max_total_attempts;

  const auto t0 = std::chrono::steady_clock::now();
  auto guarded = acc::execute_guarded<T>(dev, plan, b, policy, verify);
  const auto t1 = std::chrono::steady_clock::now();

  out.attempts = alloc_failures + guarded.attempts;
  out.recovered = guarded.ok && out.attempts > 1;
  out.degraded = guarded.degraded;
  for (const acc::DegradeEvent& ev : guarded.events) {
    out.events.push_back("attempt " + std::to_string(alloc_failures +
                                                     ev.attempt) +
                         " (rung " + std::to_string(ev.rung) + ", failure " +
                         std::to_string(ev.failure_on_rung) +
                         ") failed: " + ev.reason + " -> " + ev.action);
  }
  out.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (guarded.ok) {
    out.stats = guarded.result.stats;
    out.kernels = guarded.result.kernels;
    out.device_ms = guarded.result.stats.device_time_ns / 1e6;
    out.verified = true;
    std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
    if (guarded.result.scalar.has_value()) {
      const T v = *guarded.result.scalar;
      h = fnv1a(h, &v, sizeof v);
    }
    if (out_slots > 1) {
      const auto span = result_buf.host_span();
      h = fnv1a(h, span.data(), span.size() * sizeof(T));
    }
    out.result_hash = h;
  } else {
    out.stats.error = guarded.error;
    out.detail = to_string(guarded.error);
  }
  // The aggregate over every attempt, not just the last launch: failed
  // attempts' fired faults (and the runner's own injected allocation
  // failures above) belong in the record too.
  out.stats.faults_armed = guarded.faults_armed || !alloc_events.empty();
  for (gpusim::FaultEvent& fe : guarded.fault_events) {
    if (alloc_events.size() >= gpusim::BlockFaults::kMaxEventsPerLaunch) break;
    alloc_events.push_back(std::move(fe));
  }
  out.stats.fault_events = std::move(alloc_events);
  return out;
}

/// Extended-kind cells that do not go through execute_guarded (the
/// loc/segmented pipelines have no plan to degrade): same fault-arming,
/// verification-as-guard and retry treatment, minus the geometry rungs.
template <typename T>
CaseOutcome run_ext_typed(acc::CompilerId id, const ExtSpec& spec,
                          const RunnerOptions& opts) {
  if (spec.kind == ExtKind::kFusedCascade) {
    // The fused chain is a planned strategy like any scalar cell, so it
    // rides the full run_typed pipeline (guarded execution, degradation
    // ladder, result hashing) with a pre-built chain plan. The Table 2
    // robustness model does not apply: its GWV failure cells describe
    // those compilers' scalar lowering, not this fusion pass.
    const acc::NestIR nest =
        nest_for_chain(acc::ReductionOp::kSum, spec.type, opts);
    acc::ExecutionPlan plan = acc::plan_chained(nest, acc::profile(id));
    const CaseSpec scalar{Position::kGangWorkerVector, acc::ReductionOp::kSum,
                          spec.type};
    return run_typed<T>(id, scalar, opts, &plan, /*apply_robustness=*/false);
  }

  CaseOutcome out;
  const acc::CompilerProfile& prof = acc::profile(id);
  reduce::StrategyConfig sc = prof.strategy;
  if (opts.sim_threads != 0) sc.sim.sim_threads = opts.sim_threads;
  if (opts.racecheck) sc.sim.racecheck = true;
  if (opts.error_on_race) sc.sim.error_on_race = true;
  sc.sim.max_steps = opts.max_steps;
  sc.sim.cancel_token = opts.cancel;

  const std::int64_t extent = opts.reduction_extent;
  const auto volume = static_cast<std::size_t>(extent);
  constexpr std::size_t kSegments = 64;
  const bool want_min = spec.kind == ExtKind::kArgMin;
  const acc::ReductionOp value_op = spec.kind == ExtKind::kSegmented
                                        ? acc::ReductionOp::kSum
                                        : (want_min ? acc::ReductionOp::kMin
                                                    : acc::ReductionOp::kMax);

  gpusim::Device dev(opts.device_limits);
  std::string fspec =
      !opts.faults.empty() ? opts.faults : gpusim::faults_env_default();

  std::vector<gpusim::FaultEvent> fault_events;
  const auto append_events = [&](std::vector<gpusim::FaultEvent> evs) {
    for (gpusim::FaultEvent& e : evs) {
      if (fault_events.size() >= gpusim::BlockFaults::kMaxEventsPerLaunch) {
        break;
      }
      fault_events.push_back(std::move(e));
    }
  };

  int failures = 0;
  out.attempts = 0;  // pre-incremented per attempt below
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    ++out.attempts;
    gpusim::FaultPlan fplan;
    if (!fspec.empty()) fplan = gpusim::FaultPlan::parse(fspec);
    out.stats.faults_armed = out.stats.faults_armed || !fplan.empty();
    sc.sim.faults = fspec;
    if (fplan.has_alloc_faults()) {
      dev.arm_alloc_faults(fplan);
    } else {
      dev.clear_alloc_faults();
    }

    std::string fail_reason;
    try {
      auto input = dev.alloc<T>(volume, "input");
      {
        auto host = input.host_span();
        for (std::size_t i = 0; i < volume; ++i) {
          host[i] = testsuite_value<T>(value_op, i);
        }
      }
      auto in_view = input.view();
      const auto value_at = [=](gpusim::ThreadCtx& ctx, std::int64_t idx) {
        return ctx.ld(in_view, static_cast<std::size_t>(idx));
      };
      const auto host_in = input.host_span();

      std::ostringstream why;
      bool ok = true;
      gpusim::LaunchStats stats;
      int kernels = 0;
      std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis

      if (spec.kind == ExtKind::kSegmented) {
        auto res = reduce::run_segmented_reduction<T>(
            dev, extent, kSegments, opts.config, value_op,
            [](std::int64_t idx) {
              return static_cast<std::size_t>(idx) % kSegments;
            },
            value_at, sc);
        stats = res.stats;
        kernels = res.kernels;
        // Per-segment sequential reference (float refs in double, as the
        // scalar grid does).
        using Acc = std::conditional_t<std::is_same_v<T, float>, double, T>;
        const acc::RuntimeOp<Acc> rop{value_op};
        for (std::size_t s = 0; s < kSegments; ++s) {
          Acc ref = rop.identity();
          for (std::size_t i = s; i < volume; i += kSegments) {
            ref = rop.apply(ref, static_cast<Acc>(host_in[i]));
          }
          if (!reduction_result_matches(static_cast<T>(ref), res.values[s],
                                        volume / kSegments + 1)) {
            ok = false;
            why << "segment " << s << ": expected " << static_cast<T>(ref)
                << " got " << res.values[s] << "; ";
          }
        }
        h = fnv1a(h, res.values.data(), res.values.size() * sizeof(T));
      } else {
        auto res = reduce::run_arg_reduction<T>(dev, extent, opts.config,
                                                want_min, value_at, sc);
        stats = res.stats;
        kernels = res.kernels;
        // The loc fold is value-comparison only (no rounding), so the
        // device pair must match the sequential one exactly.
        acc::ValueIndex<T> ref =
            want_min ? acc::ArgMinOp<T>::identity()
                     : acc::ArgMaxOp<T>::identity();
        for (std::size_t i = 0; i < volume; ++i) {
          const acc::ValueIndex<T> c{host_in[i],
                                     static_cast<std::int64_t>(i)};
          ref = want_min ? acc::ArgMinOp<T>{}.apply(ref, c)
                         : acc::ArgMaxOp<T>{}.apply(ref, c);
        }
        if (!(res.value == ref)) {
          ok = false;
          why << "arg pair: expected (" << ref.value << ", " << ref.index
              << ") got (" << res.value.value << ", " << res.value.index
              << ")";
        }
        h = fnv1a(h, &res.value.value, sizeof(T));
        h = fnv1a(h, &res.value.index, sizeof res.value.index);
      }

      append_events(std::move(stats.fault_events));
      if (ok) {
        const auto t1 = std::chrono::steady_clock::now();
        out.stats = stats;
        out.kernels = kernels;
        out.device_ms = stats.device_time_ns / 1e6;
        out.wall_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        out.verified = true;
        out.recovered = out.attempts > 1;
        out.result_hash = h;
        out.stats.faults_armed =
            out.stats.faults_armed || !fault_events.empty();
        out.stats.fault_events = std::move(fault_events);
        dev.clear_alloc_faults();
        return out;
      }
      fail_reason = why.str();
    } catch (const gpusim::LaunchError& e) {
      gpusim::LaunchErrorInfo info = e.info();
      fail_reason = to_string(info);
      const bool carried = !info.fired.empty();
      append_events(std::move(info.fired));
      if (info.injected && !carried) {
        gpusim::FaultEvent fe;
        fe.kind = info.code == gpusim::LaunchErrorCode::kOom
                      ? gpusim::FaultKind::kAllocFail
                      : gpusim::FaultKind::kWarpAbort;
        fe.block = info.block;
        fe.warp = info.warp;
        fe.stage = info.stage;
        fe.detail = info.message;
        append_events({std::move(fe)});
      }
      out.stats.error = e.info();
    }

    ++failures;
    std::string action;
    const std::string sticky =
        fspec.empty() ? fspec : gpusim::FaultPlan::parse(fspec).sticky_spec();
    // Terminal outcomes first, mirroring execute_guarded: a client
    // cancellation never retries, and a spent attempt budget may not
    // launch again.
    if (out.stats.error.code == gpusim::LaunchErrorCode::kCancelled) {
      out.events.push_back("attempt " + std::to_string(out.attempts) +
                           " failed: " + fail_reason +
                           " -> cancelled: give up");
      out.detail = fail_reason;
      out.stats.faults_armed =
          out.stats.faults_armed || !fault_events.empty();
      out.stats.fault_events = std::move(fault_events);
      dev.clear_alloc_faults();
      return out;
    }
    if (opts.max_total_attempts > 0 &&
        out.attempts >= opts.max_total_attempts) {
      out.events.push_back("attempt " + std::to_string(out.attempts) +
                           " failed: " + fail_reason +
                           " -> attempt budget exhausted: give up");
      out.detail = fail_reason;
      out.stats.faults_armed =
          out.stats.faults_armed || !fault_events.empty();
      out.stats.fault_events = std::move(fault_events);
      dev.clear_alloc_faults();
      return out;
    }
    if (failures == 1 && sticky != fspec) {
      fspec = sticky;
      action = "strip non-sticky faults and retry";
    } else if (failures <= opts.max_retries) {
      action = "retry";
    } else {
      out.events.push_back("attempt " + std::to_string(out.attempts) +
                           " failed: " + fail_reason + " -> give up");
      out.detail = fail_reason;
      out.stats.faults_armed =
          out.stats.faults_armed || !fault_events.empty();
      out.stats.fault_events = std::move(fault_events);
      dev.clear_alloc_faults();
      return out;
    }
    out.events.push_back("attempt " + std::to_string(out.attempts) +
                         " failed: " + fail_reason + " -> " + action);
  }
}

}  // namespace

acc::NestIR nest_for_case(const CaseSpec& spec, const RunnerOptions& opts,
                          acc::ClauseDiscipline discipline) {
  const CaseGeometry geo = case_geometry(spec.pos, opts.reduction_extent);
  return build_nest(spec.pos, spec.op, spec.type, geo, opts.config,
                    discipline);
}

acc::ExecutionPlan plan_for_case(acc::CompilerId id, const CaseSpec& spec,
                                 const RunnerOptions& opts) {
  const acc::CompilerProfile& prof = acc::profile(id);
  return acc::plan_single(nest_for_case(spec, opts, prof.discipline), prof);
}

CaseOutcome Runner::run(acc::CompilerId id, const CaseSpec& spec) {
  return dispatch_type(spec.type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_typed<T>(id, spec, opts_, nullptr);
  });
}

CaseOutcome Runner::run_planned(acc::CompilerId id, const CaseSpec& spec,
                                const acc::ExecutionPlan& plan) {
  return dispatch_type(spec.type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_typed<T>(id, spec, opts_, &plan);
  });
}

acc::NestIR nest_for_chain(acc::ReductionOp op, acc::DataType type,
                           const RunnerOptions& opts) {
  return nest_for_chain(std::array<acc::ReductionOp, 3>{op, op, op}, type,
                        opts);
}

acc::NestIR nest_for_chain(const std::array<acc::ReductionOp, 3>& ops,
                           acc::DataType type, const RunnerOptions& opts) {
  const CaseGeometry geo = case_geometry(Position::kGangWorkerVector,
                                         opts.reduction_extent);
  acc::NestIR nest;
  nest.config = opts.config;
  nest.loops = {
      acc::LoopSpec{acc::mask_of(acc::Par::kGang), geo.dims.nk,
                    {{ops[2], "sum"}}},
      acc::LoopSpec{acc::mask_of(acc::Par::kWorker), geo.dims.nj,
                    {{ops[1], "j_sum"}}},
      acc::LoopSpec{acc::mask_of(acc::Par::kVector), geo.dims.ni,
                    {{ops[0], "i_sum"}}},
  };
  // use_level of each producer == accum_level of its consumer: the chain
  // signature detect_chains() keys on.
  nest.vars = {
      {"i_sum", type, 2, 1},
      {"j_sum", type, 1, 0},
      {"sum", type, 0, acc::VarInfo::kHostUse},
  };
  return nest;
}

CaseOutcome Runner::run_ext(acc::CompilerId id, const ExtSpec& spec) {
  return dispatch_type(spec.type, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_ext_typed<T>(id, spec, opts_);
  });
}

}  // namespace accred::testsuite
