// Table-2-shaped reporting for the reduction testsuite: one row per
// (position, operator), one column per (type, compiler), cells holding
// milliseconds or "F" / "CE" — plus a Fig. 11-style per-position series
// dump for plotting.
#pragma once

#include <map>
#include <ostream>
#include <vector>

#include "obs/record.hpp"
#include "testsuite/runner.hpp"

namespace accred::testsuite {

struct CellKey {
  acc::Position pos;
  acc::ReductionOp op;
  acc::DataType type;
  acc::CompilerId compiler;

  friend bool operator<(const CellKey& a, const CellKey& b) {
    return std::tie(a.pos, a.op, a.type, a.compiler) <
           std::tie(b.pos, b.op, b.type, b.compiler);
  }
};

class Report {
public:
  void add(const CellKey& key, const CaseOutcome& outcome) {
    cells_[key] = outcome;
  }

  /// Table 2: rows = position x operator, columns = type x compiler.
  void print_table2(std::ostream& os,
                    const std::vector<acc::DataType>& types,
                    const std::vector<acc::CompilerId>& compilers) const;

  /// Fig. 11: one block per (position, operator) with a bar value (ms) per
  /// compiler per type — the same data keyed for plotting.
  void print_fig11(std::ostream& os,
                   const std::vector<acc::DataType>& types,
                   const std::vector<acc::CompilerId>& compilers) const;

  /// Verification summary: pass/fail counts per compiler.
  void print_verification(std::ostream& os) const;

  /// Structured twin of print_table2: one record entry per cell, named
  /// "position/op/type/compiler" (spaces folded to '_'), carrying the
  /// modeled time, full LaunchStats, and the robustness / verification
  /// status — plus per-compiler verification totals in the record meta.
  void to_record(obs::RunRecord& rec) const;

  [[nodiscard]] const std::map<CellKey, CaseOutcome>& cells() const {
    return cells_;
  }

private:
  std::map<CellKey, CaseOutcome> cells_;
};

/// Cell text: time in ms, or the paper's F / CE markers.
[[nodiscard]] std::string cell_text(const CaseOutcome& o);

}  // namespace accred::testsuite
