// Deterministic input generators for the reduction testsuite (§4: "we have
// designed and implemented a testsuite to validate all possible cases of
// reduction including different reduction data types and reduction
// operations"). Values are chosen per operator so that results stay
// representable (no int overflow for *, no float blow-up) while remaining
// non-trivial (order-sensitive digits for +, mixed signs for max/min,
// mixed bit patterns for the bitwise family).
#pragma once

#include <cmath>
#include <concepts>
#include <cstdint>
#include <cstdlib>

#include "acc/ops.hpp"
#include "util/rng.hpp"

namespace accred::testsuite {

/// Value of element `flat` for reductions with operator `op`.
template <typename T>
[[nodiscard]] T testsuite_value(acc::ReductionOp op, std::uint64_t flat) {
  // Cheap stateless mix (one SplitMix64 round) for reproducible "noise".
  const std::uint64_t h = util::SplitMix64(flat ^ 0xA5A5A5A5u).next();
  switch (op) {
    case acc::ReductionOp::kSum:
      if constexpr (std::floating_point<T>) {
        return static_cast<T>((h % 1000) * 1e-3);
      } else if constexpr (sizeof(T) == 4 && std::signed_integral<T>) {
        // Small addends: a full-scale (64M element) sum must not overflow
        // a signed 32-bit accumulator (UB, unlike unsigned wrap).
        return static_cast<T>(h % 4);
      } else {
        return static_cast<T>(h % 100);
      }
    case acc::ReductionOp::kProd:
      if constexpr (std::floating_point<T>) {
        // Sparse powers of two: every multiplication is exact in binary
        // floating point, so the product is order-independent bit-for-bit
        // at any scale. Placement is hash-based (position-periodic
        // placement correlates with the window stride and concentrates
        // factors in single threads), and sparse enough that the exponent
        // imbalance of any subset stays far from the float range limit
        // (checked in tests at the paper's full 64M volume).
        const std::uint64_t r = h % 65536;
        if (r == 7) return T{2};
        if (r == 8) return static_cast<T>(0.5);
        return T{1};
      } else if constexpr (std::signed_integral<T>) {
        // Sign-flip products: the magnitude stays 1 (no signed overflow at
        // any scale), the sign tracks the parity of -1 factors.
        return (flat % 1021 == 5) ? static_cast<T>(-1) : T{1};
      } else {
        // Unsigned wrap is defined and stays associative/commutative, so
        // sparse 2s and 3s are safe at any scale.
        if (flat % 1021 == 5) return T{2};
        if (flat % 2047 == 9) return T{3};
        return T{1};
      }
    case acc::ReductionOp::kMax:
    case acc::ReductionOp::kMin:
      if constexpr (std::floating_point<T>) {
        return static_cast<T>(static_cast<double>(h % 200001) - 100000.0);
      } else if constexpr (std::signed_integral<T>) {
        return static_cast<T>(static_cast<std::int64_t>(h % 200001) - 100000);
      } else {
        return static_cast<T>(h % 200001);
      }
    case acc::ReductionOp::kBitAnd:
      // Mostly-ones patterns so the AND keeps informative bits.
      return static_cast<T>(~(std::uint64_t{1} << (h % 31)) & 0x7FFFFFFFu);
    case acc::ReductionOp::kBitOr:
    case acc::ReductionOp::kBitXor:
      return static_cast<T>(h & 0x7FFFFFFFu);
    case acc::ReductionOp::kLogAnd:
      return static_cast<T>((flat % 4093 != 17) ? 1 : 0);
    case acc::ReductionOp::kLogOr:
      return static_cast<T>((flat % 4093 == 17) ? 1 : 0);
  }
  return T{};
}

/// Verification comparator: exact for integers, relative tolerance for
/// floating point (the tree combines in a different order than the
/// sequential CPU fold; both carry rounding error that grows ~sqrt(count)).
template <typename T>
[[nodiscard]] bool reduction_result_matches(T expected, T actual,
                                            std::uint64_t count = 1) {
  if constexpr (std::floating_point<T>) {
    const double e = static_cast<double>(expected);
    const double a = static_cast<double>(actual);
    const double sq = std::sqrt(static_cast<double>(count));
    const double tol = (sizeof(T) == 4 ? 1e-6 * sq + 1e-5
                                       : 1e-14 * sq + 1e-13);
    return std::abs(e - a) <= tol * (1.0 + std::abs(e));
  } else {
    (void)count;
    return expected == actual;
  }
}

}  // namespace accred::testsuite
