#include "testsuite/cases.hpp"

namespace accred::testsuite {

CaseGeometry case_geometry(acc::Position pos, std::int64_t r) {
  using acc::Position;
  CaseGeometry g;
  switch (pos) {
    case Position::kGang:
      g.dims = {r, 2, 32};
      g.contrib_count = r;
      break;
    case Position::kWorker:
      g.dims = {2, r, 32};
      g.contrib_count = r;
      break;
    case Position::kVector:
      g.dims = {2, 32, r};
      g.contrib_count = r;
      break;
    case Position::kGangWorker:
      g.dims = {r, 2, 32};
      g.contrib_count = r * 2;
      break;
    case Position::kWorkerVector:
      g.dims = {32, 2, r};
      g.contrib_count = 2 * r;
      break;
    case Position::kGangWorkerVector:
      g.dims = {r, 2, 32};
      g.contrib_count = r * 2 * 32;
      break;
    case Position::kSameLineGangWorkerVector:
      g.dims = {1, 1, 1};
      g.same_loop_extent = r * 64;
      g.contrib_count = r * 64;
      break;
  }
  return g;
}

const std::vector<acc::Position>& all_positions() {
  static const std::vector<acc::Position> kPositions = {
      acc::Position::kGang,
      acc::Position::kWorker,
      acc::Position::kVector,
      acc::Position::kGangWorker,
      acc::Position::kWorkerVector,
      acc::Position::kGangWorkerVector,
      acc::Position::kSameLineGangWorkerVector,
  };
  return kPositions;
}

std::vector<CaseSpec> table2_grid() {
  std::vector<CaseSpec> out;
  for (acc::Position pos : all_positions()) {
    for (acc::ReductionOp op :
         {acc::ReductionOp::kSum, acc::ReductionOp::kProd}) {
      for (acc::DataType type :
           {acc::DataType::kInt32, acc::DataType::kFloat,
            acc::DataType::kDouble}) {
        out.push_back({pos, op, type});
      }
    }
  }
  return out;
}

std::vector<CaseSpec> full_grid() {
  const acc::ReductionOp ops[] = {
      acc::ReductionOp::kSum,    acc::ReductionOp::kProd,
      acc::ReductionOp::kMax,    acc::ReductionOp::kMin,
      acc::ReductionOp::kBitAnd, acc::ReductionOp::kBitOr,
      acc::ReductionOp::kBitXor, acc::ReductionOp::kLogAnd,
      acc::ReductionOp::kLogOr};
  const acc::DataType types[] = {
      acc::DataType::kInt32, acc::DataType::kUInt32, acc::DataType::kInt64,
      acc::DataType::kFloat, acc::DataType::kDouble};
  std::vector<CaseSpec> out;
  for (acc::Position pos : all_positions()) {
    for (acc::ReductionOp op : ops) {
      const bool bitwise = op == acc::ReductionOp::kBitAnd ||
                           op == acc::ReductionOp::kBitOr ||
                           op == acc::ReductionOp::kBitXor;
      for (acc::DataType type : types) {
        if (bitwise && !is_integral(type)) continue;
        out.push_back({pos, op, type});
      }
    }
  }
  return out;
}

std::string_view to_string(ExtKind k) {
  switch (k) {
    case ExtKind::kArgMin: return "argmin";
    case ExtKind::kArgMax: return "argmax";
    case ExtKind::kSegmented: return "segmented";
    case ExtKind::kFusedCascade: return "fused-cascade";
  }
  return "?";
}

std::vector<ExtSpec> ext_grid() {
  std::vector<ExtSpec> out;
  for (ExtKind kind : {ExtKind::kArgMin, ExtKind::kArgMax,
                       ExtKind::kSegmented, ExtKind::kFusedCascade}) {
    for (acc::DataType type :
         {acc::DataType::kInt32, acc::DataType::kFloat,
          acc::DataType::kDouble}) {
      out.push_back({kind, type});
    }
  }
  return out;
}

}  // namespace accred::testsuite
