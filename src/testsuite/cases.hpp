// The reduction testsuite's case registry (§4, Table 2): seven reduction
// positions, the published operator/type grid, and the loop geometry of
// each case. "When one loop level needs to do reduction, that loop
// iteration size is up to 1M and the other two loops are 2 and 32"; every
// case moves the same total volume (64 x the reduction extent), as in the
// paper, so times are comparable across rows.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "acc/profiles.hpp"
#include "reduce/strategy.hpp"

namespace accred::testsuite {

struct CaseSpec {
  acc::Position pos = acc::Position::kGang;
  acc::ReductionOp op = acc::ReductionOp::kSum;
  acc::DataType type = acc::DataType::kInt32;
};

/// Loop extents for a case, parameterized by the reduction extent `r`
/// (the paper's "up to 1M"; our benches default to 2^17 and offer --full).
struct CaseGeometry {
  reduce::Nest3 dims;                ///< (gang, worker, vector) extents
  std::int64_t same_loop_extent = 0; ///< for the same-line case
  std::int64_t contrib_count = 0;    ///< contributions folded per result
};

[[nodiscard]] CaseGeometry case_geometry(acc::Position pos, std::int64_t r);

/// All seven positions, in Table 2 row order.
[[nodiscard]] const std::vector<acc::Position>& all_positions();

/// The published Table 2 grid: positions x {+, *} x {int, float, double}.
[[nodiscard]] std::vector<CaseSpec> table2_grid();

/// The full coverage grid: positions x all operators x all types (valid
/// combinations only) — the "testsuite to validate all possible cases".
[[nodiscard]] std::vector<CaseSpec> full_grid();

/// Extended reduction kinds beyond the Table 2 scalar grid: the RAJA-style
/// loc-reductions, segmented (per-bucket) reductions over the array
/// machinery, and the fused Fig. 4 producer→consumer cascade. These run
/// through the same verification / racecheck / fault-campaign harness as
/// the scalar cells but live in their own grid — the published Table 2
/// position set must not grow (committed baselines key on it).
enum class ExtKind : std::uint8_t {
  kArgMin,        ///< (value, index) pair, reduce/argminmax.hpp
  kArgMax,
  kSegmented,     ///< one result per bucket, reduce/segmented_reduce.hpp
  kFusedCascade,  ///< Fig. 4 chain in one kernel, reduce/fused_cascade.hpp
};

[[nodiscard]] std::string_view to_string(ExtKind k);

struct ExtSpec {
  ExtKind kind = ExtKind::kArgMin;
  acc::DataType type = acc::DataType::kInt32;
};

/// The extended-kind grid: every ExtKind x {int, float, double}.
[[nodiscard]] std::vector<ExtSpec> ext_grid();

}  // namespace accred::testsuite
