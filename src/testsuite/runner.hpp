// Executes testsuite cases: builds the annotated nest for a case exactly
// as a user of the given compiler would write it (single clause for the
// auto-detecting compilers, clause-on-every-level for the CAPS
// discipline), runs the planned strategy on the simulated device, verifies
// the result against the sequential CPU fold, and reports the modeled
// device time — one Table 2 cell per call.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "acc/planner.hpp"
#include "acc/profiles.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/pool.hpp"
#include "testsuite/cases.hpp"

namespace accred::testsuite {

struct RunnerOptions {
  /// The reduction-loop extent (the paper's "up to 1M" = 2^20). Scaled
  /// down by default so the full grid simulates in seconds, preserving
  /// every modeled shape (costs are linear in the extent).
  std::int64_t reduction_extent = 1 << 17;
  /// Include the Fig. 4-style parallel copy (temp = input) on the
  /// non-reducing levels; this is the bulk of every case's memory traffic.
  bool parallel_work = true;
  acc::LaunchConfig config{};  ///< paper defaults: 192 / 8 / 128
  /// Host worker threads per kernel launch, forwarded into every planned
  /// strategy's SimOptions. 0 = process default (ACCRED_SIM_THREADS env /
  /// hardware_concurrency), 1 = serial; results are identical either way.
  std::uint32_t sim_threads = 0;
  /// Run every planned strategy under the dynamic race detector
  /// (gpusim/racecheck.hpp); conflicts land in CaseOutcome::stats.
  bool racecheck = false;
  /// Fault-injection spec (gpusim/faultinject.hpp grammar) armed on every
  /// planned strategy and on the runner's own device allocations; "" = the
  /// ACCRED_FAULTS env default.
  std::string faults = {};
  /// Guarded execution: same-configuration re-runs after a failed attempt
  /// before the ladder degrades the plan (acc::execute_guarded).
  int max_retries = 1;
  /// Walk the degradation ladder (all-barriers tree, then smaller launch
  /// geometry) after the retries; off = retry only.
  bool degrade = true;
  /// Degradation rungs the ladder may descend: -1 = unlimited, 0 = none,
  /// N = stop after the Nth plan change (GuardPolicy::max_degrade_rungs).
  int max_degrade_rungs = -1;
  /// Hard cap on total guarded attempts (0 = unlimited) — the hook the
  /// service's per-tenant retry budget debits against.
  int max_total_attempts = 0;
  /// Client cancellation token observed by every kernel this case
  /// launches (gpusim::CancelToken): once cancelled, the run terminates
  /// with a structured kCancelled in CaseOutcome::stats.error and the
  /// guarded ladder stops immediately. Null = not cancellable.
  std::shared_ptr<gpusim::CancelToken> cancel = nullptr;
  /// Escalate racecheck conflicts into LaunchError{kRace} (the terminating
  /// verdict for deleted-barrier mutants; needs racecheck).
  bool error_on_race = false;
  /// Watchdog barrier-wave budget override per kernel; 0 = default
  /// (ACCRED_MAX_STEPS env, else gpusim::kDefaultMaxSteps).
  std::uint64_t max_steps = 0;
  /// Limits for the per-case simulated Device (the reduction service runs
  /// every job on its own Device built from these).
  gpusim::DeviceLimits device_limits{};
};

struct CaseOutcome {
  acc::Robustness status = acc::Robustness::kOk;  ///< modeled F / CE cells
  bool verified = false;  ///< result matched the CPU fold (when status=Ok)
  double device_ms = 0;   ///< modeled kernel time
  double wall_ms = 0;     ///< host simulation time (informational)
  gpusim::LaunchStats stats;
  int kernels = 0;
  std::string detail;  ///< mismatch / error diagnostics
  int attempts = 1;    ///< executions the guarded run needed (incl. allocs)
  bool recovered = false;  ///< verified after at least one failed attempt
  bool degraded = false;   ///< verified on a degraded plan
  /// Rendered degradation history ("attempt N failed (code): … -> action"),
  /// empty on a clean first-attempt pass.
  std::vector<std::string> events;
  /// FNV-1a over the bit patterns of the verified results (scalar and the
  /// per-instance output buffer); 0 until a run verifies. Lets callers
  /// compare results for bit-identity across runs without holding buffers
  /// — the service's fault-isolation tests key on it.
  std::uint64_t result_hash = 0;
};

/// Build the annotated nest for a case exactly as the runner does (useful
/// for inspecting plans and emitting the generated CUDA source).
[[nodiscard]] acc::NestIR nest_for_case(const CaseSpec& spec,
                                        const RunnerOptions& opts,
                                        acc::ClauseDiscipline discipline);

/// Analyze + plan a case under a compiler profile.
[[nodiscard]] acc::ExecutionPlan plan_for_case(acc::CompilerId id,
                                               const CaseSpec& spec,
                                               const RunnerOptions& opts);

/// The Fig. 4 chained nest (i_sum -> j_sum -> sum, one reduction per
/// level, every stage using `op`) at the gang-worker-vector geometry for
/// `reduction_extent`. analyze() detects one fusable chain over it;
/// plan_chained() lowers it to a kFusedCascade plan.
[[nodiscard]] acc::NestIR nest_for_chain(acc::ReductionOp op,
                                         acc::DataType type,
                                         const RunnerOptions& opts);

/// Same nest with per-stage ops, innermost stage first ({vector, worker,
/// gang}) — the order ExecutionPlan::chain and service JobSpec::chain_ops
/// use.
[[nodiscard]] acc::NestIR nest_for_chain(
    const std::array<acc::ReductionOp, 3>& ops, acc::DataType type,
    const RunnerOptions& opts);

class Runner {
public:
  explicit Runner(RunnerOptions opts = {}) : opts_(opts) {}

  /// Run one Table 2 cell for one compiler.
  [[nodiscard]] CaseOutcome run(acc::CompilerId id, const CaseSpec& spec);

  /// Same, but execute a pre-built plan (e.g. from the service's plan
  /// cache) instead of planning from scratch. The plan must describe this
  /// case at these options — only sim knobs (threads, faults, racecheck,
  /// max_steps) are applied on top.
  [[nodiscard]] CaseOutcome run_planned(acc::CompilerId id,
                                        const CaseSpec& spec,
                                        const acc::ExecutionPlan& plan);

  /// Run one extended-kind cell (argmin/argmax, segmented, fused cascade)
  /// under a compiler profile's strategy configuration, with the same
  /// verification, racecheck, fault-injection and retry treatment as the
  /// scalar grid.
  [[nodiscard]] CaseOutcome run_ext(acc::CompilerId id, const ExtSpec& spec);

  [[nodiscard]] const RunnerOptions& options() const noexcept {
    return opts_;
  }

private:
  RunnerOptions opts_;
};

}  // namespace accred::testsuite
